//! Radix-2 complex FFT.
//!
//! A self-contained iterative Cooley–Tukey transform used by the spectral
//! band-pass filter. Sizes must be powers of two; callers zero-pad.

use crate::error::PreprocessError;
use crate::Result;

/// One complex sample, `(re, im)`.
pub type Complex = (f64, f64);

/// In-place forward FFT of a power-of-two-length complex buffer.
pub fn fft(buf: &mut [Complex]) -> Result<()> {
    transform(buf, false)
}

/// In-place inverse FFT (includes the 1/N normalization).
pub fn ifft(buf: &mut [Complex]) -> Result<()> {
    transform(buf, true)?;
    let n = buf.len() as f64;
    for c in buf.iter_mut() {
        c.0 /= n;
        c.1 /= n;
    }
    Ok(())
}

fn transform(buf: &mut [Complex], inverse: bool) -> Result<()> {
    let n = buf.len();
    if n == 0 || n & (n - 1) != 0 {
        return Err(PreprocessError::InvalidParameter {
            name: "fft length",
            reason: "length must be a non-zero power of two",
        });
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            buf.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut cur = (1.0_f64, 0.0_f64);
            for k in 0..len / 2 {
                let a = buf[start + k];
                let b = buf[start + k + len / 2];
                let t = (b.0 * cur.0 - b.1 * cur.1, b.0 * cur.1 + b.1 * cur.0);
                buf[start + k] = (a.0 + t.0, a.1 + t.1);
                buf[start + k + len / 2] = (a.0 - t.0, a.1 - t.1);
                cur = (cur.0 * wr - cur.1 * wi, cur.0 * wi + cur.1 * wr);
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Next power of two ≥ `n` (n ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_complex(v: &[f64]) -> Vec<Complex> {
        v.iter().map(|&x| (x, 0.0)).collect()
    }

    #[test]
    fn rejects_non_pow2() {
        let mut b = vec![(0.0, 0.0); 6];
        assert!(fft(&mut b).is_err());
        let mut b: Vec<Complex> = vec![];
        assert!(fft(&mut b).is_err());
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut b = to_complex(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        fft(&mut b).unwrap();
        for &(re, im) in &b {
            assert!((re - 1.0).abs() < 1e-12);
            assert!(im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_dc_only() {
        let mut b = to_complex(&[1.0; 8]);
        fft(&mut b).unwrap();
        assert!((b[0].0 - 8.0).abs() < 1e-12);
        for &(re, im) in &b[1..] {
            assert!(re.abs() < 1e-12 && im.abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_identity() {
        let orig: Vec<f64> = (0..64).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut b = to_complex(&orig);
        fft(&mut b).unwrap();
        ifft(&mut b).unwrap();
        for (i, &(re, im)) in b.iter().enumerate() {
            assert!((re - orig[i]).abs() < 1e-10);
            assert!(im.abs() < 1e-10);
        }
    }

    #[test]
    fn pure_tone_lands_in_one_bin() {
        let n = 32;
        let k = 5;
        let mut b: Vec<Complex> = (0..n)
            .map(|i| {
                (
                    (std::f64::consts::TAU * k as f64 * i as f64 / n as f64).cos(),
                    0.0,
                )
            })
            .collect();
        fft(&mut b).unwrap();
        // Energy concentrated in bins k and n-k.
        for (i, &(re, im)) in b.iter().enumerate() {
            let mag = (re * re + im * im).sqrt();
            if i == k || i == n - k {
                assert!((mag - n as f64 / 2.0).abs() < 1e-9, "bin {i} mag {mag}");
            } else {
                assert!(mag < 1e-9, "bin {i} mag {mag}");
            }
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let orig: Vec<f64> = (0..16).map(|i| (i as f64 * 0.7).sin()).collect();
        let time_energy: f64 = orig.iter().map(|x| x * x).sum();
        let mut b = to_complex(&orig);
        fft(&mut b).unwrap();
        let freq_energy: f64 = b.iter().map(|&(re, im)| re * re + im * im).sum::<f64>() / 16.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(64), 64);
        assert_eq!(next_pow2(65), 128);
    }

    #[test]
    fn linearity() {
        let a: Vec<f64> = (0..16).map(|i| (i as f64).cos()).collect();
        let b: Vec<f64> = (0..16).map(|i| (i as f64 * 0.3).sin()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x + y).collect();
        let mut fa = to_complex(&a);
        let mut fb = to_complex(&b);
        let mut fs = to_complex(&sum);
        fft(&mut fa).unwrap();
        fft(&mut fb).unwrap();
        fft(&mut fs).unwrap();
        for i in 0..16 {
            assert!((fs[i].0 - (2.0 * fa[i].0 + fb[i].0)).abs() < 1e-9);
            assert!((fs[i].1 - (2.0 * fa[i].1 + fb[i].1)).abs() < 1e-9);
        }
    }
}
