//! Band-pass filtering.
//!
//! The paper uses "a bandpass filter between 0.008 Hz and 0.1 Hz" on
//! resting-state data (§3.2.1). Two interchangeable implementations:
//!
//! * [`fir_bandpass`] — windowed-sinc (Hamming) FIR applied by direct
//!   convolution with symmetric edge padding; linear phase, no ringing
//!   surprises, O(T·L).
//! * [`fft_bandpass`] — zero-phase spectral masking with raised-cosine band
//!   edges via the in-crate FFT; O(T log T), the default for long scans.
//!
//! A unit test drives both with the same tones and asserts matching
//! pass/stop behaviour, which keeps the two implementations honest.

use crate::error::PreprocessError;
use crate::fft::{fft, ifft, next_pow2, Complex};
use crate::Result;
use neurodeanon_linalg::Matrix;

/// Validated band-pass specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Low cutoff in Hz (pass above this).
    pub f_lo: f64,
    /// High cutoff in Hz (pass below this).
    pub f_hi: f64,
    /// Sampling frequency in Hz (`1 / TR`).
    pub fs: f64,
}

impl Band {
    /// Creates a band after validating `0 ≤ f_lo < f_hi ≤ fs/2`.
    pub fn new(f_lo: f64, f_hi: f64, fs: f64) -> Result<Self> {
        if !(fs > 0.0 && fs.is_finite()) {
            return Err(PreprocessError::InvalidParameter {
                name: "fs",
                reason: "sampling frequency must be positive and finite",
            });
        }
        if !(0.0..).contains(&f_lo) || f_lo >= f_hi || f_hi > fs / 2.0 {
            return Err(PreprocessError::InvalidParameter {
                name: "band",
                reason: "need 0 <= f_lo < f_hi <= fs/2",
            });
        }
        Ok(Band { f_lo, f_hi, fs })
    }

    /// The paper's resting-state band at the HCP repetition time (0.72 s):
    /// 0.008–0.1 Hz at fs ≈ 1.389 Hz.
    pub fn hcp_resting() -> Self {
        Band {
            f_lo: 0.008,
            f_hi: 0.1,
            fs: 1.0 / 0.72,
        }
    }
}

/// Designs a windowed-sinc band-pass FIR kernel with `taps` coefficients
/// (odd; even values are bumped up by one). Hamming window.
pub fn design_fir(band: Band, taps: usize) -> Result<Vec<f64>> {
    if taps < 3 {
        return Err(PreprocessError::InvalidParameter {
            name: "taps",
            reason: "need at least 3 taps",
        });
    }
    let taps = if taps % 2 == 0 { taps + 1 } else { taps };
    let m = (taps - 1) as f64;
    let nyq = band.fs / 2.0;
    let lo = band.f_lo / nyq; // normalized (0..1)
    let hi = band.f_hi / nyq;
    let mut h = vec![0.0; taps];
    for (i, hv) in h.iter_mut().enumerate() {
        let n = i as f64 - m / 2.0;
        // Ideal band-pass = highpass(lo) ∩ lowpass(hi) = sinc(hi) - sinc(lo).
        let ideal = if n == 0.0 {
            hi - lo
        } else {
            let x = std::f64::consts::PI * n;
            ((hi * x).sin() - (lo * x).sin()) / x
        };
        let window = 0.54 - 0.46 * (std::f64::consts::TAU * i as f64 / m).cos();
        *hv = ideal * window;
    }
    Ok(h)
}

/// Applies an FIR kernel to one series with symmetric (mirror) edge padding,
/// returning a same-length output with the kernel's group delay removed.
pub fn fir_apply(series: &[f64], kernel: &[f64]) -> Result<Vec<f64>> {
    let t = series.len();
    let l = kernel.len();
    if t < 2 {
        return Err(PreprocessError::SeriesTooShort {
            required: 2,
            got: t,
        });
    }
    let half = l / 2;
    // Mirror-pad: s[-k] = s[k], s[T-1+k] = s[T-1-k].
    let padded: Vec<f64> = (0..t + 2 * half)
        .map(|i| {
            let idx = i as isize - half as isize;
            let idx = if idx < 0 {
                (-idx) as usize
            } else if idx as usize >= t {
                2 * (t - 1) - idx as usize
            } else {
                idx as usize
            };
            series[idx.min(t - 1)]
        })
        .collect();
    let mut out = vec![0.0; t];
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (k, &h) in kernel.iter().enumerate() {
            acc += h * padded[i + l - 1 - k];
        }
        *o = acc;
    }
    Ok(out)
}

/// FIR band-pass of every row of `ts` in place.
pub fn fir_bandpass(ts: &mut Matrix, band: Band, taps: usize) -> Result<()> {
    let kernel = design_fir(band, taps)?;
    for r in 0..ts.rows() {
        let filtered = fir_apply(ts.row(r), &kernel)?;
        ts.row_mut(r).copy_from_slice(&filtered);
    }
    Ok(())
}

/// Zero-phase FFT band-pass of every row of `ts` in place.
///
/// Each series is mean-padded to the next power of two, transformed,
/// multiplied by a raised-cosine band mask (10% transition width), and
/// inverse-transformed.
pub fn fft_bandpass(ts: &mut Matrix, band: Band) -> Result<()> {
    let t = ts.cols();
    if t < 4 {
        return Err(PreprocessError::SeriesTooShort {
            required: 4,
            got: t,
        });
    }
    let n = next_pow2(t * 2); // 2× padding softens wrap-around leakage
    let df = band.fs / n as f64;
    // Precompute the mask over the first n/2+1 bins.
    let trans_lo = (band.f_lo * 0.5).max(df); // transition half-widths
    let trans_hi = band.f_hi * 0.1;
    let mask: Vec<f64> = (0..=n / 2)
        .map(|k| {
            let f = k as f64 * df;
            raised_cosine_gain(f, band.f_lo, band.f_hi, trans_lo, trans_hi)
        })
        .collect();
    for r in 0..ts.rows() {
        let row = ts.row_mut(r);
        let mean = row.iter().sum::<f64>() / t as f64;
        let mut buf: Vec<Complex> = Vec::with_capacity(n);
        buf.extend(row.iter().map(|&x| (x - mean, 0.0)));
        buf.resize(n, (0.0, 0.0));
        fft(&mut buf)?;
        for k in 0..n {
            let bin = if k <= n / 2 { k } else { n - k };
            let g = mask[bin];
            buf[k].0 *= g;
            buf[k].1 *= g;
        }
        ifft(&mut buf)?;
        for (x, c) in row.iter_mut().zip(&buf) {
            *x = c.0;
        }
    }
    Ok(())
}

/// Raised-cosine gain: 0 outside the band, 1 inside, smooth half-cosine
/// transitions of the given widths at each edge.
fn raised_cosine_gain(f: f64, lo: f64, hi: f64, w_lo: f64, w_hi: f64) -> f64 {
    let rise = |x: f64| 0.5 - 0.5 * (std::f64::consts::PI * x.clamp(0.0, 1.0)).cos();
    if f < lo - w_lo || f > hi + w_hi {
        0.0
    } else if f < lo + w_lo {
        rise((f - (lo - w_lo)) / (2.0 * w_lo))
    } else if f > hi - w_hi {
        rise(((hi + w_hi) - f) / (2.0 * w_hi))
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(t: usize, fs: f64, f: f64) -> Vec<f64> {
        (0..t)
            .map(|i| (std::f64::consts::TAU * f * i as f64 / fs).sin())
            .collect()
    }

    fn rms(v: &[f64]) -> f64 {
        (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt()
    }

    #[test]
    fn band_validation() {
        assert!(Band::new(0.1, 0.01, 1.0).is_err());
        assert!(Band::new(0.01, 0.6, 1.0).is_err()); // above Nyquist
        assert!(Band::new(0.01, 0.1, 0.0).is_err());
        assert!(Band::new(0.008, 0.1, 1.0 / 0.72).is_ok());
    }

    #[test]
    fn hcp_band_matches_paper() {
        let b = Band::hcp_resting();
        assert_eq!(b.f_lo, 0.008);
        assert_eq!(b.f_hi, 0.1);
        assert!((b.fs - 1.3888).abs() < 1e-3);
    }

    #[test]
    fn fir_kernel_is_symmetric_linear_phase() {
        let b = Band::new(0.05, 0.2, 1.0).unwrap();
        let h = design_fir(b, 41).unwrap();
        assert_eq!(h.len(), 41);
        for i in 0..20 {
            assert!((h[i] - h[40 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn fir_passes_in_band_rejects_out_of_band() {
        let fs = 1.0;
        let b = Band::new(0.05, 0.2, fs).unwrap();
        let h = design_fir(b, 101).unwrap();
        let t = 600;
        let pass = fir_apply(&tone(t, fs, 0.12), &h).unwrap();
        let stop_hi = fir_apply(&tone(t, fs, 0.45), &h).unwrap();
        let stop_lo = fir_apply(&tone(t, fs, 0.005), &h).unwrap();
        // Ignore filter edges when measuring.
        let core = 100..t - 100;
        assert!(
            rms(&pass[core.clone()]) > 0.5,
            "pass rms {}",
            rms(&pass[core.clone()])
        );
        assert!(rms(&stop_hi[core.clone()]) < 0.05);
        assert!(rms(&stop_lo[core]) < 0.15);
    }

    #[test]
    fn fft_passes_in_band_rejects_out_of_band() {
        let fs = 1.0;
        let b = Band::new(0.05, 0.2, fs).unwrap();
        let t = 512;
        let mut m = Matrix::zeros(3, t);
        m.set_row(0, &tone(t, fs, 0.12)).unwrap();
        m.set_row(1, &tone(t, fs, 0.45)).unwrap();
        m.set_row(2, &tone(t, fs, 0.005)).unwrap();
        fft_bandpass(&mut m, b).unwrap();
        let core = 64..t - 64;
        assert!(rms(&m.row(0)[core.clone()]) > 0.6);
        assert!(rms(&m.row(1)[core.clone()]) < 0.05);
        assert!(rms(&m.row(2)[core]) < 0.15);
    }

    #[test]
    fn fir_and_fft_agree_on_band_energy() {
        let fs = 1.0 / 0.72;
        let b = Band::hcp_resting();
        let t = 400;
        // Mixed signal: in-band 0.05 Hz + out-of-band 0.5 Hz.
        let sig: Vec<f64> = (0..t)
            .map(|i| {
                let time = i as f64 / fs;
                (std::f64::consts::TAU * 0.05 * time).sin()
                    + (std::f64::consts::TAU * 0.5 * time).sin()
            })
            .collect();
        let mut fir_m = Matrix::from_vec(1, t, sig.clone()).unwrap();
        let mut fft_m = Matrix::from_vec(1, t, sig).unwrap();
        fir_bandpass(&mut fir_m, b, 101).unwrap();
        fft_bandpass(&mut fft_m, b).unwrap();
        let core = 80..t - 80;
        let r_fir = rms(&fir_m.row(0)[core.clone()]);
        let r_fft = rms(&fft_m.row(0)[core.clone()]);
        // Both keep roughly the in-band unit-amplitude tone (rms ≈ 0.707).
        assert!((r_fir - 0.707).abs() < 0.12, "fir rms {r_fir}");
        assert!((r_fft - 0.707).abs() < 0.12, "fft rms {r_fft}");
        // And they correlate strongly sample-by-sample in the core.
        let r =
            neurodeanon_linalg::stats::pearson(&fir_m.row(0)[core.clone()], &fft_m.row(0)[core])
                .unwrap();
        assert!(r > 0.95, "agreement r = {r}");
    }

    #[test]
    fn fft_bandpass_removes_dc() {
        let b = Band::new(0.05, 0.2, 1.0).unwrap();
        let mut m = Matrix::filled(2, 128, 7.5);
        fft_bandpass(&mut m, b).unwrap();
        assert!(m.max_abs() < 1e-9);
    }

    #[test]
    fn short_series_rejected() {
        let b = Band::new(0.05, 0.2, 1.0).unwrap();
        let mut m = Matrix::zeros(1, 2);
        assert!(fft_bandpass(&mut m, b).is_err());
        assert!(fir_apply(&[1.0], &[1.0]).is_err());
        assert!(design_fir(b, 2).is_err());
    }
}
