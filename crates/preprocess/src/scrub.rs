//! Spike scrubbing (motion/artifact censoring).
//!
//! Computes a framewise-displacement proxy — the root-mean-square change of
//! the whole image between consecutive frames — flags frames whose
//! displacement exceeds `threshold × median`, and replaces flagged frames by
//! linear interpolation between their clean neighbours. This is the
//! "censoring + interpolation" treatment common in connectome pipelines and
//! undoes the spike artifacts injected by the synthetic scanner.

use crate::error::PreprocessError;
use crate::Result;
use neurodeanon_linalg::Matrix;

/// Framewise displacement proxy: `fd[t] = RMS over rows of (x[t] − x[t−1])`,
/// with `fd[0] = 0`.
pub fn framewise_displacement(ts: &Matrix) -> Result<Vec<f64>> {
    let (rows, t) = ts.shape();
    if rows == 0 || t < 2 {
        return Err(PreprocessError::SeriesTooShort {
            required: 2,
            got: t,
        });
    }
    let mut fd = vec![0.0; t];
    for frame in 1..t {
        let mut acc = 0.0;
        for r in 0..rows {
            let d = ts[(r, frame)] - ts[(r, frame - 1)];
            acc += d * d;
        }
        fd[frame] = (acc / rows as f64).sqrt();
    }
    Ok(fd)
}

/// Scrubs spike frames in place. A frame is flagged when its framewise
/// displacement exceeds `threshold` times the median displacement; flagged
/// frames are replaced by linear interpolation between the nearest clean
/// frames on each side (clamped at the scan edges). Returns the flagged
/// frame indices.
pub fn scrub_spikes(ts: &mut Matrix, threshold: f64) -> Result<Vec<usize>> {
    if !(threshold > 1.0 && threshold.is_finite()) {
        return Err(PreprocessError::InvalidParameter {
            name: "threshold",
            reason: "scrub threshold must be a finite multiplier > 1",
        });
    }
    let fd = framewise_displacement(ts)?;
    let t = ts.cols();
    let mut sorted: Vec<f64> = fd[1..].to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = sorted[sorted.len() / 2];
    if median <= 0.0 {
        return Ok(Vec::new()); // perfectly static data, nothing to scrub
    }
    // A spike contaminates the frame it lands on; fd flags the jump into it
    // and the jump out of it. Mark frames whose incoming OR outgoing
    // displacement is extreme, then keep only frames where both transitions
    // are extreme relative to their neighbours (isolated spikes), falling
    // back to the simple rule for edge frames.
    let cut = threshold * median;
    let mut bad = vec![false; t];
    for frame in 1..t {
        if fd[frame] > cut {
            // The jump could be into frame `frame` or out of `frame-1`;
            // attribute it to whichever side also has a large opposite jump.
            let into_next = fd.get(frame + 1).copied().unwrap_or(0.0);
            if into_next > cut {
                bad[frame] = true; // spike sits at `frame`
            } else {
                // A step change: flag the later frame conservatively.
                bad[frame] = true;
            }
        }
    }
    let flagged: Vec<usize> = (0..t).filter(|&i| bad[i]).collect();
    if flagged.is_empty() {
        return Ok(flagged);
    }
    // Interpolate each row across bad frames.
    for r in 0..ts.rows() {
        let row = ts.row_mut(r);
        let mut frame = 0;
        while frame < t {
            if !bad[frame] {
                frame += 1;
                continue;
            }
            // Find the run of bad frames [frame, end).
            let start = frame;
            let mut end = frame;
            while end < t && bad[end] {
                end += 1;
            }
            let left = start.checked_sub(1);
            let right = if end < t { Some(end) } else { None };
            match (left, right) {
                (Some(l), Some(rr)) => {
                    let span = (rr - l) as f64;
                    for i in start..end {
                        let w = (i - l) as f64 / span;
                        row[i] = (1.0 - w) * row[l] + w * row[rr];
                    }
                }
                (Some(l), None) => {
                    for i in start..end {
                        row[i] = row[l];
                    }
                }
                (None, Some(rr)) => {
                    for i in start..end {
                        row[i] = row[rr];
                    }
                }
                (None, None) => {} // all frames bad; leave untouched
            }
            frame = end;
        }
    }
    Ok(flagged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_matrix(rows: usize, t: usize) -> Matrix {
        Matrix::from_fn(rows, t, |r, i| ((i as f64 * 0.12) + r as f64).sin())
    }

    #[test]
    fn fd_zero_for_static_data() {
        let m = Matrix::filled(4, 10, 3.0);
        let fd = framewise_displacement(&m).unwrap();
        assert!(fd.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn fd_detects_single_jump() {
        let mut m = Matrix::filled(2, 10, 0.0);
        for r in 0..2 {
            m[(r, 5)] = 10.0;
        }
        let fd = framewise_displacement(&m).unwrap();
        assert!(fd[5] > 9.0 && fd[6] > 9.0);
        assert!(fd[3] == 0.0);
    }

    #[test]
    fn scrub_removes_injected_spike() {
        let mut m = smooth_matrix(6, 80);
        let clean = m.clone();
        for r in 0..6 {
            m[(r, 40)] += 25.0;
        }
        let flagged = scrub_spikes(&mut m, 4.0).unwrap();
        assert!(flagged.contains(&40), "flagged {flagged:?}");
        // Post-scrub data close to the clean original at the spike frame.
        for r in 0..6 {
            assert!((m[(r, 40)] - clean[(r, 40)]).abs() < 0.2);
        }
    }

    #[test]
    fn scrub_noop_on_clean_data() {
        let mut m = smooth_matrix(4, 60);
        let orig = m.clone();
        let flagged = scrub_spikes(&mut m, 6.0).unwrap();
        assert!(flagged.is_empty());
        assert_eq!(m, orig);
    }

    #[test]
    fn scrub_handles_spike_at_last_frame() {
        let mut m = smooth_matrix(3, 50);
        for r in 0..3 {
            m[(r, 49)] += 30.0;
        }
        let flagged = scrub_spikes(&mut m, 4.0).unwrap();
        assert!(flagged.contains(&49));
        // Last frame copied from its left neighbour.
        for r in 0..3 {
            assert!((m[(r, 49)] - m[(r, 48)]).abs() < 1e-9);
        }
    }

    #[test]
    fn scrub_validates_threshold() {
        let mut m = smooth_matrix(2, 10);
        assert!(scrub_spikes(&mut m, 0.5).is_err());
        assert!(scrub_spikes(&mut m, f64::NAN).is_err());
    }

    #[test]
    fn static_data_scrubs_nothing() {
        let mut m = Matrix::filled(3, 20, 1.0);
        let flagged = scrub_spikes(&mut m, 3.0).unwrap();
        assert!(flagged.is_empty());
    }
}
