//! Head-motion correction by frame-wise realignment.
//!
//! The synthetic scanner's motion model translates the image along x by a
//! sub-voxel amount from a random onset onward (a blend with the +x
//! neighbour). Correction follows the classic realignment recipe: estimate,
//! for each frame, the x-translation that best matches a reference frame
//! (minimizing sum of squared differences over a search grid with linear
//! interpolation), then resample the frame by the inverse shift.

use crate::error::PreprocessError;
use crate::Result;
use neurodeanon_fmri::Volume4D;

/// Maximum |shift| searched, in voxels.
const MAX_SHIFT: f64 = 1.5;
/// Search grid resolution, in voxels.
const STEP: f64 = 0.05;

/// Samples the volume frame at fractional x position `x + shift` (linear
/// interpolation, clamped at the x extremes).
#[allow(clippy::too_many_arguments)] // voxel coordinates stay explicit
fn sample_shifted(
    frame: &[f64],
    nx: usize,
    ny: usize,
    _nz: usize,
    x: usize,
    y: usize,
    z: usize,
    shift: f64,
) -> f64 {
    let pos = x as f64 + shift;
    let x0 = pos.floor().clamp(0.0, (nx - 1) as f64) as usize;
    let x1 = (x0 + 1).min(nx - 1);
    let w = (pos - x0 as f64).clamp(0.0, 1.0);
    let idx = |xx: usize| xx + nx * (y + ny * z);
    (1.0 - w) * frame[idx(x0)] + w * frame[idx(x1)]
}

/// Estimates the x-translation of `frame` relative to `reference` by grid
/// search over `[-MAX_SHIFT, MAX_SHIFT]` minimizing the sum of squared
/// differences. Both slices are flat x-fastest 3-D frames.
pub fn estimate_shift(
    reference: &[f64],
    frame: &[f64],
    dims: (usize, usize, usize),
) -> Result<f64> {
    let (nx, ny, nz) = dims;
    if reference.len() != nx * ny * nz || frame.len() != reference.len() {
        return Err(PreprocessError::InvalidParameter {
            name: "frame",
            reason: "frame length does not match dims",
        });
    }
    let mut best_shift = 0.0;
    let mut best_ssd = f64::INFINITY;
    let steps = (2.0 * MAX_SHIFT / STEP).round() as i64;
    for k in 0..=steps {
        // Integer stepping keeps the zero-shift candidate exactly 0.0.
        let shift = (k - steps / 2) as f64 * STEP;
        let mut ssd = 0.0;
        for z in 0..nz {
            for y in 0..ny {
                // Interior voxels only: edge clamping biases the estimate.
                for x in 1..nx.saturating_sub(1) {
                    let moved = sample_shifted(frame, nx, ny, nz, x, y, z, shift);
                    let idx = x + nx * (y + ny * z);
                    let d = moved - reference[idx];
                    ssd += d * d;
                }
            }
        }
        if ssd < best_ssd {
            best_ssd = ssd;
            best_shift = shift;
        }
    }
    Ok(best_shift)
}

/// Realigns every frame of the volume to its first frame, in place.
///
/// Shifts are estimated *incrementally* (each frame against its
/// predecessor) with a dead zone, then integrated: genuine head motion is
/// a step between adjacent frames, while drift/respiration/global-signal
/// artifacts evolve too slowly to produce above-threshold increments. This
/// keeps the correction from smearing clean-but-artifact-laden data.
/// Returns the integrated per-frame shifts (the "motion parameters" a real
/// pipeline would save as nuisance regressors).
pub fn motion_correct(vol: &mut Volume4D) -> Result<Vec<f64>> {
    let (nx, ny, nz) = vol.dims();
    let t = vol.time_points();
    if t < 2 {
        return Err(PreprocessError::SeriesTooShort {
            required: 2,
            got: t,
        });
    }
    // Spike censoring: frames whose whole-image RMS change from the
    // previous frame is extreme would yield wild shift estimates, so they
    // are excluded from registration (the scrubbing stage repairs their
    // values separately).
    let mut fd = vec![0.0; t];
    // Raw frames (for spike detection and final resampling reference).
    let mut raw_frames: Vec<Vec<f64>> = Vec::with_capacity(t);
    for frame_idx in 0..t {
        raw_frames.push(vol.frame(frame_idx)?);
    }
    // Registration working copies: spatially high-passed.
    let mut frames: Vec<Vec<f64>> = Vec::with_capacity(t);
    for frame_idx in 0..t {
        let raw = raw_frames[frame_idx].clone();
        // Spatial high-pass along x before registration: subtract the
        // local ±2-voxel mean. Intensity artifacts (drift, global signal,
        // respiration gains) are spatially smooth and vanish under the
        // high-pass, while the voxel-scale anatomy used for alignment
        // survives — the classic trick that keeps intensity changes from
        // masquerading as motion.
        let mut hp = vec![0.0; raw.len()];
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let idx = x + nx * (y + ny * z);
                    let lo = x.saturating_sub(2);
                    let hi = (x + 3).min(nx);
                    let mut mean = 0.0;
                    for xx in lo..hi {
                        mean += raw[xx + nx * (y + ny * z)];
                    }
                    mean /= (hi - lo) as f64;
                    hp[idx] = raw[idx] - mean;
                }
            }
        }
        frames.push(hp);
    }
    for i in 1..t {
        let mut acc = 0.0;
        for (a, b) in raw_frames[i].iter().zip(&raw_frames[i - 1]) {
            let d = a - b;
            acc += d * d;
        }
        fd[i] = (acc / raw_frames[i].len() as f64).sqrt();
    }
    let mut sorted = fd[1..].to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median_fd = sorted[sorted.len() / 2];
    // A spike contaminates one frame: both the jump into it AND out of it
    // are extreme. A genuine motion onset produces only one extreme jump
    // (into the first displaced frame) — it must NOT be censored, or the
    // event would be invisible to the incremental estimator.
    let is_spike = |i: usize| {
        if median_fd <= 0.0 || i == 0 {
            return false;
        }
        let into = fd[i] > 4.0 * median_fd;
        match fd.get(i + 1) {
            Some(&out) => into && out > 4.0 * median_fd,
            None => into, // last frame: conservative
        }
    };

    // Incremental estimation: register each frame to the last *good*
    // frame. Slowly evolving artifacts (drift, global signal, respiration)
    // change negligibly between adjacent frames, so their apparent
    // displacement falls inside the dead zone; a genuine motion event shows
    // up as one above-threshold increment. Integrating the dead-zoned
    // increments yields the absolute displacement of every frame.
    let mut shifts = vec![0.0; t];
    let mut last_good = 0usize;
    let mut acc = 0.0;
    for frame_idx in 1..t {
        if is_spike(frame_idx) {
            // Spike frame: keep the accumulated shift, do not update the
            // reference (the scrubbing stage repairs its values).
            shifts[frame_idx] = shifts[frame_idx - 1];
            continue;
        }
        let inc = estimate_shift(&frames[last_good], &frames[frame_idx], (nx, ny, nz))?;
        if inc.abs() >= 4.0 * STEP {
            acc += inc;
        }
        acc = acc.clamp(-MAX_SHIFT, MAX_SHIFT);
        shifts[frame_idx] = if acc.abs() < 2.0 * STEP { 0.0 } else { acc };
        last_good = frame_idx;
    }
    for frame_idx in 1..t {
        let shift = shifts[frame_idx];
        if shift == 0.0 {
            continue;
        }
        // Resample the *original* intensities (the smoothed/high-passed
        // frames were registration-only working copies).
        let frame = &raw_frames[frame_idx];
        // Resample: corrected(x) = frame(x + shift) is the aligned value
        // (estimate_shift found the shift that matches reference).
        let mut corrected = vec![0.0; frame.len()];
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    corrected[x + nx * (y + ny * z)] =
                        sample_shifted(frame, nx, ny, nz, x, y, z, shift);
                }
            }
        }
        for (v, &val) in corrected.iter().enumerate() {
            vol.voxel_ts_mut(v)[frame_idx] = val;
        }
    }
    Ok(shifts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_linalg::Rng64;

    /// Builds a volume with a smooth spatial pattern, constant in time.
    fn structured_volume(t: usize) -> Volume4D {
        let (nx, ny, nz) = (10, 8, 6);
        let mut vol = Volume4D::zeros(nx, ny, nz, t).unwrap();
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let v = vol.voxel_index(x, y, z);
                    let val =
                        (x as f64 * 0.8).sin() * 2.0 + (y as f64 * 0.5).cos() + z as f64 * 0.1;
                    for s in vol.voxel_ts_mut(v) {
                        *s = val;
                    }
                }
            }
        }
        vol
    }

    /// Applies the scanner's blend-style shift to one frame.
    fn blend_frame(vol: &mut Volume4D, frame: usize, w: f64) {
        let (nx, ny, nz) = vol.dims();
        for z in 0..nz {
            for y in 0..ny {
                let orig: Vec<f64> = (0..nx)
                    .map(|x| vol.sample(vol.voxel_index(x, y, z), frame))
                    .collect();
                for x in 0..nx {
                    let nb = orig[(x + 1).min(nx - 1)];
                    let v = vol.voxel_index(x, y, z);
                    vol.voxel_ts_mut(v)[frame] = (1.0 - w) * orig[x] + w * nb;
                }
            }
        }
    }

    #[test]
    fn estimate_shift_zero_for_identical_frames() {
        let vol = structured_volume(2);
        let f0 = vol.frame(0).unwrap();
        let f1 = vol.frame(1).unwrap();
        let s = estimate_shift(&f0, &f1, vol.dims()).unwrap();
        assert_eq!(s, 0.0);
    }

    #[test]
    fn estimate_shift_recovers_known_blend() {
        let mut vol = structured_volume(2);
        blend_frame(&mut vol, 1, 0.4);
        let f0 = vol.frame(0).unwrap();
        let f1 = vol.frame(1).unwrap();
        // Blending toward +x neighbour = sampling at x + w ⇒ the content
        // matches the reference when we sample the *reference* at x + w, so
        // the frame appears shifted by −w; the SSD-optimal corrective shift
        // is ≈ −0.4.
        let s = estimate_shift(&f0, &f1, vol.dims()).unwrap();
        assert!((s + 0.4).abs() < 0.1, "estimated {s}");
    }

    #[test]
    fn motion_correct_restores_shifted_frames() {
        let mut vol = structured_volume(6);
        let clean = vol.clone();
        // Shift frames 3.. by blend 0.6 (like a motion event at t=3).
        // Sub-dead-zone shifts (< 0.2 voxels) are deliberately left alone
        // by the corrector, so the test uses a solidly detectable event.
        for f in 3..6 {
            blend_frame(&mut vol, f, 0.6);
        }
        let pre_err: f64 = (0..vol.n_voxels())
            .map(|v| (vol.sample(v, 4) - clean.sample(v, 4)).abs())
            .sum();
        let shifts = motion_correct(&mut vol).unwrap();
        let post_err: f64 = (0..vol.n_voxels())
            .map(|v| (vol.sample(v, 4) - clean.sample(v, 4)).abs())
            .sum();
        // Blend motion is lossy (it low-passes the frame), so realignment
        // cannot restore it exactly; demand a solid reduction.
        assert!(post_err < pre_err * 0.75, "pre {pre_err} post {post_err}");
        // Reported motion parameters flag the event frames.
        assert!(shifts[0] == 0.0 && shifts[2].abs() < 0.1);
        assert!(shifts[4].abs() > 0.15);
    }

    #[test]
    fn motion_correct_noop_on_static_volume() {
        let mut vol = structured_volume(4);
        let orig = vol.clone();
        let shifts = motion_correct(&mut vol).unwrap();
        assert!(shifts.iter().all(|&s| s.abs() < 1e-9));
        assert_eq!(vol, orig);
    }

    #[test]
    fn motion_correct_tolerates_noise() {
        let mut vol = structured_volume(5);
        let mut rng = Rng64::new(8);
        for v in 0..vol.n_voxels() {
            for s in vol.voxel_ts_mut(v) {
                *s += rng.gaussian() * 0.05;
            }
        }
        let shifts = motion_correct(&mut vol).unwrap();
        // No genuine motion: all estimated shifts stay small.
        assert!(shifts.iter().all(|&s| s.abs() <= 0.2), "{shifts:?}");
    }

    #[test]
    fn validates_inputs() {
        let vol = structured_volume(2);
        let f0 = vol.frame(0).unwrap();
        assert!(estimate_shift(&f0, &f0[..10], vol.dims()).is_err());
        let mut single = structured_volume(1);
        assert!(motion_correct(&mut single).is_err());
    }
}
