//! The composed preprocessing pipeline (paper Figure 4).
//!
//! Stage order follows the paper: spatial corrections on the 4-D volume
//! (motion correction, skull stripping), then reduction to `region × time`
//! via the atlas, then temporal cleaning (scrubbing, detrending, band-pass,
//! global signal regression, z-scoring). Temporal stages run after region
//! averaging because linear filtering commutes with the within-region mean,
//! and regions × time is two orders of magnitude smaller than voxels × time.
//!
//! Every stage is individually toggleable, which is what the
//! preprocessing-ablation experiment (DESIGN.md E10) sweeps.

use crate::detrend::detrend_rows;
use crate::filter::{fft_bandpass, Band};
use crate::gsr::global_signal_regression;
use crate::motion::motion_correct;
use crate::scrub::scrub_spikes;
use crate::skullstrip::skull_strip;
use crate::slicetime::slice_time_correct;
use crate::Result;
use neurodeanon_atlas::{region_average, Parcellation};
use neurodeanon_fmri::Volume4D;
use neurodeanon_linalg::stats::zscore_rows;
use neurodeanon_linalg::Matrix;

/// Pipeline configuration; the default enables every stage with the paper's
/// resting-state parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// First-order slice-time correction (needed only when the acquisition
    /// models per-slice sampling offsets; the default synthetic scanner
    /// does not, so this defaults to off).
    pub slice_time: bool,
    /// Frame-wise rigid realignment.
    pub motion_correct: bool,
    /// Temporal-variance skull stripping.
    pub skull_strip: bool,
    /// Spike scrubbing threshold (multiplier over median framewise
    /// displacement); `None` disables scrubbing.
    pub scrub_threshold: Option<f64>,
    /// Polynomial detrend degree; `None` disables detrending.
    pub detrend_degree: Option<usize>,
    /// Band-pass specification; `None` disables filtering.
    pub bandpass: Option<Band>,
    /// Global signal regression.
    pub gsr: bool,
    /// Final per-region z-scoring.
    pub zscore: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            slice_time: false,
            motion_correct: true,
            skull_strip: true,
            // Region-averaged spikes sit only ~2.5-4× above the median
            // framewise displacement once respiration raises the baseline;
            // a conservative multiplier catches them, and a false positive
            // merely interpolates one ordinary frame.
            scrub_threshold: Some(2.5),
            detrend_degree: Some(2),
            bandpass: Some(Band::hcp_resting()),
            gsr: true,
            zscore: true,
        }
    }
}

impl PipelineConfig {
    /// Disables every stage — the "no preprocessing" ablation baseline
    /// (region averaging still happens; it is part of connectome
    /// construction, not cleaning).
    pub fn none() -> Self {
        PipelineConfig {
            slice_time: false,
            motion_correct: false,
            skull_strip: false,
            scrub_threshold: None,
            detrend_degree: None,
            bandpass: None,
            gsr: false,
            zscore: false,
        }
    }
}

/// Per-run quality-control report.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Estimated per-frame motion shifts (empty when disabled).
    pub motion_shifts: Vec<f64>,
    /// Number of voxels classified as brain (0 when stripping disabled).
    pub brain_voxels: usize,
    /// Frames replaced by the scrubber.
    pub scrubbed_frames: Vec<usize>,
    /// Fraction of variance removed by global signal regression.
    pub gsr_variance_removed: f64,
}

/// The composed preprocessing pipeline.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// Active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the full path: 4-D volume → cleaned `region × time` matrix.
    ///
    /// Consumes the volume (the spatial stages mutate it heavily; callers
    /// that need the raw volume should clone before calling).
    pub fn run(
        &self,
        mut vol: Volume4D,
        parcellation: &Parcellation,
    ) -> Result<(Matrix, PipelineReport)> {
        let mut report = PipelineReport::default();
        if self.config.slice_time {
            slice_time_correct(&mut vol)?;
        }
        if self.config.motion_correct {
            report.motion_shifts = motion_correct(&mut vol)?;
        }
        if self.config.skull_strip {
            let mask = skull_strip(&mut vol)?;
            report.brain_voxels = mask.brain_count();
        }
        let mut region_ts = region_average(parcellation, vol.as_matrix())?;
        drop(vol);
        if let Some(threshold) = self.config.scrub_threshold {
            report.scrubbed_frames = scrub_spikes(&mut region_ts, threshold)?;
        }
        if let Some(degree) = self.config.detrend_degree {
            detrend_rows(&mut region_ts, degree)?;
        }
        if let Some(band) = self.config.bandpass {
            fft_bandpass(&mut region_ts, band)?;
        }
        if self.config.gsr {
            report.gsr_variance_removed = global_signal_regression(&mut region_ts)?;
        }
        if self.config.zscore {
            zscore_rows(&mut region_ts);
        }
        Ok((region_ts, report))
    }

    /// Temporal-only path for data that is already `region × time` (the
    /// dataset generators emit region series directly when the experiment
    /// does not exercise the voxel level).
    pub fn run_temporal(&self, region_ts: &mut Matrix) -> Result<PipelineReport> {
        let mut report = PipelineReport::default();
        if let Some(threshold) = self.config.scrub_threshold {
            report.scrubbed_frames = scrub_spikes(region_ts, threshold)?;
        }
        if let Some(degree) = self.config.detrend_degree {
            detrend_rows(region_ts, degree)?;
        }
        if let Some(band) = self.config.bandpass {
            fft_bandpass(region_ts, band)?;
        }
        if self.config.gsr {
            report.gsr_variance_removed = global_signal_regression(region_ts)?;
        }
        if self.config.zscore {
            zscore_rows(region_ts);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_atlas::{grown_atlas, VoxelGrid};
    use neurodeanon_fmri::scanner::{Scanner, ScannerConfig};
    use neurodeanon_fmri::signal::resting_fluctuation;
    use neurodeanon_linalg::stats::pearson;
    use neurodeanon_linalg::{Matrix, Rng64};

    fn parc() -> Parcellation {
        grown_atlas("p", VoxelGrid::new(12, 12, 12).unwrap(), 10, 11).unwrap()
    }

    /// Latent region signals in the resting band.
    fn latent(n: usize, t: usize, seed: u64) -> Matrix {
        let mut rng = Rng64::new(seed);
        let mut m = Matrix::zeros(n, t);
        for r in 0..n {
            let s = resting_fluctuation(t, 0.72, 0.01, 0.09, 10, &mut rng).unwrap();
            m.set_row(r, &s).unwrap();
        }
        m
    }

    #[test]
    fn full_pipeline_recovers_latent_signals_from_dirty_scan() {
        let p = parc();
        let t = 160;
        let lat = latent(10, t, 21);
        let scanner = Scanner::new(ScannerConfig::default()).unwrap();
        let vol = scanner.acquire(&lat, &p, &mut Rng64::new(22)).unwrap();

        let (clean, report) = Pipeline::default().run(vol, &p).unwrap();
        assert_eq!(clean.shape(), (10, t));
        assert!(report.brain_voxels > 0);

        // Compare correlation with the latent signal against the raw
        // (no-preprocessing) path: the pipeline must do strictly better on
        // average.
        let raw_vol = scanner.acquire(&lat, &p, &mut Rng64::new(22)).unwrap();
        let (raw, _) = Pipeline::new(PipelineConfig::none())
            .run(raw_vol, &p)
            .unwrap();

        let mut clean_corr = 0.0;
        let mut raw_corr = 0.0;
        for r in 0..10 {
            clean_corr += pearson(clean.row(r), lat.row(r)).unwrap();
            raw_corr += pearson(raw.row(r), lat.row(r)).unwrap();
        }
        assert!(
            clean_corr > raw_corr,
            "pipeline {clean_corr:.3} vs raw {raw_corr:.3}"
        );
        assert!(clean_corr / 10.0 > 0.55, "mean corr {}", clean_corr / 10.0);
    }

    #[test]
    fn zscore_stage_normalizes_rows() {
        let p = parc();
        let lat = latent(10, 120, 5);
        let scanner = Scanner::new(ScannerConfig::clean()).unwrap();
        let vol = scanner.acquire(&lat, &p, &mut Rng64::new(5)).unwrap();
        let (out, _) = Pipeline::default().run(vol, &p).unwrap();
        for r in 0..out.rows() {
            let row = out.row(r);
            let mean: f64 = row.iter().sum::<f64>() / row.len() as f64;
            assert!(mean.abs() < 1e-8);
        }
    }

    #[test]
    fn disabled_stages_produce_no_report_entries() {
        let p = parc();
        let lat = latent(10, 60, 6);
        let scanner = Scanner::new(ScannerConfig::clean()).unwrap();
        let vol = scanner.acquire(&lat, &p, &mut Rng64::new(6)).unwrap();
        let (_, report) = Pipeline::new(PipelineConfig::none()).run(vol, &p).unwrap();
        assert!(report.motion_shifts.is_empty());
        assert_eq!(report.brain_voxels, 0);
        assert!(report.scrubbed_frames.is_empty());
        assert_eq!(report.gsr_variance_removed, 0.0);
    }

    #[test]
    fn temporal_path_matches_stagewise_application() {
        let mut a = latent(6, 100, 9);
        // Add drift so detrend has work.
        for r in 0..6 {
            for (i, x) in a.row_mut(r).iter_mut().enumerate() {
                *x += i as f64 * 0.01;
            }
        }
        let mut b = a.clone();

        let cfg = PipelineConfig {
            slice_time: false,
            motion_correct: false,
            skull_strip: false,
            scrub_threshold: None,
            detrend_degree: Some(1),
            bandpass: None,
            gsr: false,
            zscore: true,
        };
        Pipeline::new(cfg).run_temporal(&mut a).unwrap();

        detrend_rows(&mut b, 1).unwrap();
        zscore_rows(&mut b);
        assert!(a.sub(&b).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn gsr_report_reflects_shared_signal() {
        let t = 200;
        let shared: Vec<f64> = (0..t).map(|i| (i as f64 * 0.2).sin() * 3.0).collect();
        let mut m = Matrix::from_fn(8, t, |r, i| shared[i] + ((r * 7 + i) as f64 * 0.77).sin());
        let cfg = PipelineConfig {
            slice_time: false,
            motion_correct: false,
            skull_strip: false,
            scrub_threshold: None,
            detrend_degree: None,
            bandpass: None,
            gsr: true,
            zscore: false,
        };
        let report = Pipeline::new(cfg).run_temporal(&mut m).unwrap();
        assert!(report.gsr_variance_removed > 0.5);
    }
}
