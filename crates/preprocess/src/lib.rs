#![warn(missing_docs)]

//! # neurodeanon-preprocess
//!
//! The "minimal preprocessing pipeline" of the paper's Figure 4, rebuilt for
//! the synthetic scanner. Raw 4-D volumes carry spatial artifacts (gain
//! bias, head motion) and temporal artifacts (drift, global physiological
//! signal, spikes, thermal noise); the stages here remove them and reduce
//! the volume to the clean `region × time` matrix the attack consumes.
//!
//! Two of Figure 4's boxes are identities in the synthetic setting and are
//! therefore not separate stages: *registration to the subject's structural
//! image* and *MNI-space normalization* — every synthetic scan already
//! lives on the cohort's shared voxel grid, which is exactly the state real
//! pipelines work to reach. (The atlas crate plays the role of the MNI-space
//! parcellation.)
//!
//! Stage inventory (paper §3.2.1):
//!
//! * [`motion`] — frame-wise rigid realignment along the scanner x axis
//!   (the synthetic motion model's single degree of freedom).
//! * [`scrub`] — framewise-displacement spike detection + interpolation.
//! * [`skullstrip`] — temporal-variance brain masking.
//! * [`slicetime`] — first-order slice-time correction (the "extra step"
//!   the paper's Figure 4 discussion mentions).
//! * [`detrend`] — per-series polynomial detrending (the paper's high-pass
//!   "slow roll-off" de-trending step).
//! * [`filter`] — band-pass filtering, both windowed-sinc FIR and FFT
//!   implementations (0.008–0.1 Hz for resting state).
//! * [`fft`] — radix-2 complex FFT used by the spectral filter.
//! * [`gsr`] — global signal regression.
//! * [`pipeline`] — [`pipeline::Pipeline`]: composes everything into the
//!   volume → region-time path with per-stage QC reports and per-stage
//!   toggles for the ablation experiment (DESIGN.md E10).

pub mod detrend;
pub mod error;
pub mod fft;
pub mod filter;
pub mod gsr;
pub mod motion;
pub mod pipeline;
pub mod scrub;
pub mod skullstrip;
pub mod slicetime;

pub use error::PreprocessError;
pub use pipeline::{Pipeline, PipelineConfig, PipelineReport};

/// Result alias for preprocessing operations.
pub type Result<T> = std::result::Result<T, PreprocessError>;
