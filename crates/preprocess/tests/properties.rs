//! Property tests for the preprocessing stages.

use neurodeanon_linalg::Matrix;
use neurodeanon_preprocess::detrend::detrend_rows;
use neurodeanon_preprocess::fft::{fft, ifft};
use neurodeanon_preprocess::filter::{design_fir, fir_apply, Band};
use neurodeanon_preprocess::gsr::global_signal_regression;
use neurodeanon_preprocess::scrub::{framewise_displacement, scrub_spikes};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fft_roundtrip_random(v in prop::collection::vec(-10.0_f64..10.0, 64)) {
        let mut buf: Vec<(f64, f64)> = v.iter().map(|&x| (x, 0.0)).collect();
        fft(&mut buf).unwrap();
        ifft(&mut buf).unwrap();
        for (orig, &(re, im)) in v.iter().zip(&buf) {
            prop_assert!((re - orig).abs() < 1e-9);
            prop_assert!(im.abs() < 1e-9);
        }
    }

    #[test]
    fn detrend_kills_any_quadratic(a in -3.0_f64..3.0, b in -3.0_f64..3.0, c in -3.0_f64..3.0) {
        let t = 60;
        let mut m = Matrix::from_fn(1, t, |_, i| {
            let tau = i as f64 / (t - 1) as f64;
            a + b * tau + c * tau * tau
        });
        detrend_rows(&mut m, 2).unwrap();
        prop_assert!(m.max_abs() < 1e-8, "residual {}", m.max_abs());
    }

    #[test]
    fn detrend_is_projection(v in prop::collection::vec(-5.0_f64..5.0, 50)) {
        // Applying twice equals applying once.
        let mut m = Matrix::from_vec(1, 50, v).unwrap();
        detrend_rows(&mut m, 2).unwrap();
        let once = m.clone();
        detrend_rows(&mut m, 2).unwrap();
        prop_assert!(m.sub(&once).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn fir_is_linear(v in prop::collection::vec(-5.0_f64..5.0, 80),
                     w in prop::collection::vec(-5.0_f64..5.0, 80),
                     alpha in -2.0_f64..2.0) {
        let band = Band::new(0.05, 0.2, 1.0).unwrap();
        let k = design_fir(band, 21).unwrap();
        let combo: Vec<f64> = v.iter().zip(&w).map(|(a, b)| alpha * a + b).collect();
        let left = fir_apply(&combo, &k).unwrap();
        let fv = fir_apply(&v, &k).unwrap();
        let fw = fir_apply(&w, &k).unwrap();
        for i in 0..80 {
            prop_assert!((left[i] - (alpha * fv[i] + fw[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn gsr_never_increases_variance(rows in 2usize..6, seed in 0u64..400) {
        let t = 40;
        let mut m = Matrix::from_fn(rows, t, |r, i| {
            ((seed + 1) as f64 * (r as f64 + 1.0) * (i as f64 * 0.3)).sin()
                + (i as f64 * 0.05 * (seed % 7) as f64).cos()
        });
        let var_of = |m: &Matrix| -> f64 {
            (0..m.rows())
                .map(|r| {
                    let row = m.row(r);
                    let mean = row.iter().sum::<f64>() / t as f64;
                    row.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                })
                .sum()
        };
        let before = var_of(&m);
        let frac = global_signal_regression(&mut m).unwrap();
        let after = var_of(&m);
        prop_assert!(after <= before + 1e-9);
        prop_assert!((0.0..=1.0).contains(&frac));
    }

    #[test]
    fn scrub_is_noop_without_outliers(seed in 0u64..300) {
        let mut m = Matrix::from_fn(4, 50, |r, i| {
            ((seed + 3) as f64 * 0.01 + (i as f64 * 0.17 + r as f64)).sin()
        });
        let orig = m.clone();
        // Very high threshold: nothing should be flagged.
        let flagged = scrub_spikes(&mut m, 50.0).unwrap();
        prop_assert!(flagged.is_empty());
        prop_assert_eq!(m.as_slice(), orig.as_slice());
    }

    #[test]
    fn framewise_displacement_nonnegative(v in prop::collection::vec(-5.0_f64..5.0, 60)) {
        let m = Matrix::from_vec(3, 20, v).unwrap();
        let fd = framewise_displacement(&m).unwrap();
        prop_assert_eq!(fd.len(), 20);
        prop_assert_eq!(fd[0], 0.0);
        prop_assert!(fd.iter().all(|&x| x >= 0.0));
    }
}
