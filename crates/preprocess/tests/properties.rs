//! Property tests for the preprocessing stages.

use neurodeanon_linalg::Matrix;
use neurodeanon_preprocess::detrend::detrend_rows;
use neurodeanon_preprocess::fft::{fft, ifft};
use neurodeanon_preprocess::filter::{design_fir, fir_apply, Band};
use neurodeanon_preprocess::gsr::global_signal_regression;
use neurodeanon_preprocess::scrub::{framewise_displacement, scrub_spikes};
use neurodeanon_testkit::gen::{f64_in, u64_in, usize_in, vec_exact};
use neurodeanon_testkit::{forall, tk_assert, tk_assert_eq, Config};

fn cfg() -> Config {
    Config::cases(48)
}

#[test]
fn fft_roundtrip_random() {
    forall!(cfg(), (v in vec_exact(f64_in(-10.0..10.0), 64)) => {
        let mut buf: Vec<(f64, f64)> = v.iter().map(|&x| (x, 0.0)).collect();
        fft(&mut buf).unwrap();
        ifft(&mut buf).unwrap();
        for (orig, &(re, im)) in v.iter().zip(&buf) {
            tk_assert!((re - orig).abs() < 1e-9);
            tk_assert!(im.abs() < 1e-9);
        }
    });
}

#[test]
fn detrend_kills_any_quadratic() {
    forall!(cfg(), (a in f64_in(-3.0..3.0), b in f64_in(-3.0..3.0), c in f64_in(-3.0..3.0)) => {
        let t = 60;
        let mut m = Matrix::from_fn(1, t, |_, i| {
            let tau = i as f64 / (t - 1) as f64;
            a + b * tau + c * tau * tau
        });
        detrend_rows(&mut m, 2).unwrap();
        tk_assert!(m.max_abs() < 1e-8, "residual {}", m.max_abs());
    });
}

#[test]
fn detrend_is_projection() {
    forall!(cfg(), (v in vec_exact(f64_in(-5.0..5.0), 50)) => {
        // Applying twice equals applying once.
        let mut m = Matrix::from_vec(1, 50, v).unwrap();
        detrend_rows(&mut m, 2).unwrap();
        let once = m.clone();
        detrend_rows(&mut m, 2).unwrap();
        tk_assert!(m.sub(&once).unwrap().max_abs() < 1e-9);
    });
}

#[test]
fn fir_is_linear() {
    forall!(cfg(), (v in vec_exact(f64_in(-5.0..5.0), 80),
                    w in vec_exact(f64_in(-5.0..5.0), 80),
                    alpha in f64_in(-2.0..2.0)) => {
        let band = Band::new(0.05, 0.2, 1.0).unwrap();
        let k = design_fir(band, 21).unwrap();
        let combo: Vec<f64> = v.iter().zip(&w).map(|(a, b)| alpha * a + b).collect();
        let left = fir_apply(&combo, &k).unwrap();
        let fv = fir_apply(&v, &k).unwrap();
        let fw = fir_apply(&w, &k).unwrap();
        for i in 0..80 {
            tk_assert!((left[i] - (alpha * fv[i] + fw[i])).abs() < 1e-9);
        }
    });
}

#[test]
fn gsr_never_increases_variance() {
    forall!(cfg(), (rows in usize_in(2..6), seed in u64_in(0..400)) => {
        let t = 40;
        let mut m = Matrix::from_fn(rows, t, |r, i| {
            ((seed + 1) as f64 * (r as f64 + 1.0) * (i as f64 * 0.3)).sin()
                + (i as f64 * 0.05 * (seed % 7) as f64).cos()
        });
        let var_of = |m: &Matrix| -> f64 {
            (0..m.rows())
                .map(|r| {
                    let row = m.row(r);
                    let mean = row.iter().sum::<f64>() / t as f64;
                    row.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                })
                .sum()
        };
        let before = var_of(&m);
        let frac = global_signal_regression(&mut m).unwrap();
        let after = var_of(&m);
        tk_assert!(after <= before + 1e-9);
        tk_assert!((0.0..=1.0).contains(&frac));
    });
}

#[test]
fn scrub_is_noop_without_outliers() {
    forall!(cfg(), (seed in u64_in(0..300)) => {
        let mut m = Matrix::from_fn(4, 50, |r, i| {
            ((seed + 3) as f64 * 0.01 + (i as f64 * 0.17 + r as f64)).sin()
        });
        let orig = m.clone();
        // Very high threshold: nothing should be flagged.
        let flagged = scrub_spikes(&mut m, 50.0).unwrap();
        tk_assert!(flagged.is_empty());
        tk_assert_eq!(m.as_slice(), orig.as_slice());
    });
}

#[test]
fn framewise_displacement_nonnegative() {
    forall!(cfg(), (v in vec_exact(f64_in(-5.0..5.0), 60)) => {
        let m = Matrix::from_vec(3, 20, v).unwrap();
        let fd = framewise_displacement(&m).unwrap();
        tk_assert_eq!(fd.len(), 20);
        tk_assert_eq!(fd[0], 0.0);
        tk_assert!(fd.iter().all(|&x| x >= 0.0));
    });
}
