//! Property tests for the synthetic cohort generators.

use neurodeanon_datasets::{
    AdhdCohort, AdhdCohortConfig, HcpCohort, HcpCohortConfig, Session, Task,
};
use neurodeanon_testkit::gen::{u64_in, usize_in};
use neurodeanon_testkit::{forall, tk_assert, tk_assert_eq, tk_assert_ne, Config};

fn cfg() -> Config {
    Config::cases(24)
}

fn tiny_hcp(seed: u64) -> HcpCohort {
    HcpCohort::generate(HcpCohortConfig {
        n_subjects: 4,
        n_regions: 12,
        n_timepoints: 64,
        n_pop_factors: 4,
        n_task_factors: 3,
        n_sig_factors: 2,
        n_sig_regions: 4,
        noise_std: 0.3,
        session_strength: 0.1,
        signature_gain: 1.5,
        signature_instability: 0.3,
        seed,
        scrub_fd_threshold: None,
    })
    .unwrap()
}

#[test]
fn scans_are_deterministic_and_distinct() {
    forall!(cfg(), (seed in u64_in(0..200)) => {
        let cohort = tiny_hcp(seed);
        let a = cohort.region_ts(0, Task::Rest, Session::One).unwrap();
        let b = cohort.region_ts(0, Task::Rest, Session::One).unwrap();
        tk_assert_eq!(a.as_slice(), b.as_slice());
        // Different subject / task / session ⇒ different series.
        let c = cohort.region_ts(1, Task::Rest, Session::One).unwrap();
        tk_assert_ne!(a.as_slice(), c.as_slice());
        let d = cohort.region_ts(0, Task::Motor, Session::One).unwrap();
        tk_assert_ne!(a.as_slice(), d.as_slice());
        let e = cohort.region_ts(0, Task::Rest, Session::Two).unwrap();
        tk_assert_ne!(a.as_slice(), e.as_slice());
    });
}

#[test]
fn all_scans_finite() {
    forall!(cfg(), (seed in u64_in(0..100), task_idx in usize_in(0..8)) => {
        let cohort = tiny_hcp(seed);
        let task = Task::ALL[task_idx];
        let ts = cohort.region_ts(2, task, Session::Two).unwrap();
        tk_assert!(ts.is_finite());
        tk_assert_eq!(ts.shape(), (12, 64));
    });
}

#[test]
fn performance_in_percent_band() {
    forall!(cfg(), (seed in u64_in(0..100)) => {
        let cohort = tiny_hcp(seed);
        for task in [Task::Language, Task::Emotion, Task::Relational, Task::WorkingMemory] {
            let y = cohort.performance_vector(task).unwrap();
            tk_assert!(y.iter().all(|&v| (0.0..=100.0).contains(&v)));
        }
    });
}

#[test]
fn mode_scores_are_standard_normal_ish() {
    forall!(cfg(), (seed in u64_in(0..50)) => {
        let cohort = tiny_hcp(seed);
        for s in 0..4 {
            let z = cohort.subject_mode_scores(s).unwrap();
            tk_assert!(z.iter().all(|v| v.abs() < 6.0));
        }
        tk_assert!(cohort.subject_mode_scores(4).is_err());
    });
}

#[test]
fn adhd_group_bookkeeping() {
    forall!(cfg(), (controls in usize_in(1..5), cases in usize_in(1..4),
                    seed in u64_in(0..100)) => {
        let cohort = AdhdCohort::generate(AdhdCohortConfig {
            n_controls: controls,
            n_cases_per_subtype: cases,
            n_regions: 10,
            n_timepoints: 48,
            n_pop_factors: 4,
            n_subtype_factors: 2,
            n_sig_factors: 2,
            n_sig_regions: 4,
            signature_expression: 0.9,
            subtype_strength: 0.4,
            signature_instability: 0.3,
            noise_std: 0.5,
            seed,
        })
        .unwrap();
        tk_assert_eq!(cohort.n_subjects(), controls + 3 * cases);
        let mut total = 0;
        for g in [neurodeanon_datasets::AdhdGroup::Control,
                  neurodeanon_datasets::AdhdGroup::Subtype(1),
                  neurodeanon_datasets::AdhdGroup::Subtype(2),
                  neurodeanon_datasets::AdhdGroup::Subtype(3)] {
            total += cohort.subjects_in(g).len();
        }
        tk_assert_eq!(total, cohort.n_subjects());
        let ts = cohort.region_ts(0, Session::One).unwrap();
        tk_assert!(ts.is_finite());
    });
}

#[test]
fn group_matrix_ids_are_unique() {
    forall!(cfg(), (seed in u64_in(0..50)) => {
        let cohort = tiny_hcp(seed);
        let g = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let set: std::collections::HashSet<&String> = g.subject_ids().iter().collect();
        tk_assert_eq!(set.len(), g.n_subjects());
    });
}
