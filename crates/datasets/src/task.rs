//! The HCP scanning conditions: resting state plus the seven tasks
//! (Barch et al. 2013), with the calibration constants that shape the
//! reproduction's headline phenomena.

/// One HCP scanning condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Resting state (REST1/REST2 in the paper; the session distinguishes).
    Rest,
    /// Working-memory task (n-back).
    WorkingMemory,
    /// Gambling (incentive processing) task.
    Gambling,
    /// Motor task (tapping/squeezing cues).
    Motor,
    /// Language processing (story vs math).
    Language,
    /// Social cognition (theory of mind).
    Social,
    /// Relational processing.
    Relational,
    /// Emotion processing (faces vs shapes).
    Emotion,
}

impl Task {
    /// All eight conditions, in the order used by Figures 5 and 6.
    pub const ALL: [Task; 8] = [
        Task::Rest,
        Task::WorkingMemory,
        Task::Gambling,
        Task::Motor,
        Task::Language,
        Task::Social,
        Task::Relational,
        Task::Emotion,
    ];

    /// Display name matching the paper's condition labels.
    pub fn name(&self) -> &'static str {
        match self {
            Task::Rest => "REST",
            Task::WorkingMemory => "WM",
            Task::Gambling => "GAMBLING",
            Task::Motor => "MOTOR",
            Task::Language => "LANGUAGE",
            Task::Social => "SOCIAL",
            Task::Relational => "RELATIONAL",
            Task::Emotion => "EMOTION",
        }
    }

    /// Index into [`Task::ALL`].
    pub fn index(&self) -> usize {
        Task::ALL
            .iter()
            .position(|t| t == self)
            .expect("member of ALL")
    }

    /// Signature expression `a_k`: how strongly the individual signature
    /// shows through during this condition. Calibrated to reproduce the
    /// Figure 5 ordering: REST strongest; LANGUAGE/RELATIONAL high; SOCIAL
    /// upper-middle; EMOTION/GAMBLING middle; MOTOR and WM weak (the paper:
    /// "MOTOR and WM tasks are ineffective in predicting the
    /// correspondence, even for the same task").
    pub fn signature_expression(&self) -> f64 {
        match self {
            Task::Rest => 1.00,
            Task::Language => 0.82,
            Task::Relational => 0.78,
            Task::Social => 0.74,
            Task::Emotion => 0.72,
            Task::Gambling => 0.58,
            Task::WorkingMemory => 0.52,
            Task::Motor => 0.48,
        }
    }

    /// Task-execution variability: amplitude of the session-fresh,
    /// non-reproducible component of task-driven connectivity (strategy and
    /// engagement differ between scans of the same subject). This — not an
    /// absent signature — is what makes MOTOR/WM poor identifiers in
    /// Figure 5, while their connectomes still carry behaviour (Table 1).
    pub fn execution_variability(&self) -> f64 {
        match self {
            Task::Rest => 0.12,
            Task::Language => 0.25,
            Task::Relational => 0.30,
            Task::Social => 0.26,
            Task::Emotion => 0.30,
            Task::Gambling => 0.42,
            Task::WorkingMemory => 1.10,
            Task::Motor => 1.20,
        }
    }

    /// Task-activation strength `b_k`: amplitude of the shared,
    /// task-specific component. Strong task drive crowds out the signature
    /// (MOTOR/WM) and makes between-task t-SNE clusters compact.
    pub fn task_strength(&self) -> f64 {
        match self {
            Task::Rest => 0.35,
            Task::Language => 0.95,
            Task::Relational => 0.95,
            Task::Social => 1.00,
            Task::Emotion => 1.05,
            Task::Gambling => 0.80,
            Task::WorkingMemory => 1.25,
            Task::Motor => 1.30,
        }
    }

    /// Whether HCP publishes a percent-accuracy performance metric for this
    /// condition (the four rows of Table 1).
    pub fn has_performance_metric(&self) -> bool {
        matches!(
            self,
            Task::Language | Task::Emotion | Task::Relational | Task::WorkingMemory
        )
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_distinct_conditions() {
        let names: std::collections::HashSet<&str> = Task::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn index_roundtrip() {
        for (i, t) in Task::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn rest_has_strongest_signature() {
        for t in Task::ALL {
            assert!(t.signature_expression() <= Task::Rest.signature_expression());
        }
    }

    #[test]
    fn motor_and_wm_are_weakest() {
        let weak = [Task::Motor, Task::WorkingMemory];
        for t in Task::ALL {
            if !weak.contains(&t) {
                for w in weak {
                    assert!(w.signature_expression() < t.signature_expression());
                }
            }
        }
    }

    #[test]
    fn table1_tasks_have_metrics() {
        assert!(Task::Language.has_performance_metric());
        assert!(Task::Emotion.has_performance_metric());
        assert!(Task::Relational.has_performance_metric());
        assert!(Task::WorkingMemory.has_performance_metric());
        assert!(!Task::Rest.has_performance_metric());
        assert!(!Task::Motor.has_performance_metric());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(format!("{}", Task::Language), "LANGUAGE");
    }
}
