#![warn(missing_docs)]

//! # neurodeanon-datasets
//!
//! Synthetic cohorts standing in for the paper's two gated datasets (HCP
//! Healthy Young Adult and ADHD-200); see DESIGN.md §1 for the substitution
//! argument.
//!
//! ## Generative model
//!
//! Region time series are produced by a latent factor model
//!
//! ```text
//! x_{s,k,e}(t) = A_pop ξ(t) + b_k · B_k η(t) + a_k · G_s ζ(t) + σ ε(t)
//! ```
//!
//! * `A_pop` — population loading matrix shared by everyone (base
//!   connectivity structure).
//! * `B_k`  — condition-specific loadings (task activation pattern), scaled
//!   by the task strength `b_k`.
//! * `G_s`  — the **subject signature**: per-subject loadings supported
//!   only on a fixed subset of *signature regions* (the synthetic analogue
//!   of the parieto-frontal concentration reported by Finn et al.), scaled
//!   by the task-dependent expression `a_k`.
//! * `ξ, η, ζ, ε` — fresh white Gaussian factor series per session.
//!
//! Sessions of the same subject share loadings but not factor series, so
//! intra-subject connectome similarity emerges from shared *covariance*
//! (`a_k² G_s G_sᵀ` + …), exactly the phenomenon the attack exploits. The
//! per-task `(a_k, b_k)` calibration produces the paper's task ordering
//! (REST most identifiable; MOTOR/WM least — Figure 5) and the rest ↔
//! gambling confusion of Figure 6 (their `B` loadings share columns).
//!
//! Task performance phenotypes are linear functionals of the latent
//! signature covariance, so connectome features genuinely predict them
//! (Table 1's premise).

pub mod adhd;
pub mod blocks;
pub mod chaos;
pub mod corruption;
pub mod error;
pub mod hcp;
pub mod model;
pub mod task;

pub use adhd::{AdhdCohort, AdhdCohortConfig, AdhdGroup};
pub use blocks::{BlockedScan, BLOCK_LEN, N_SUBTYPES};
pub use chaos::{ChaosSpec, ServiceFaultKind};
pub use corruption::{
    corrupt_group, corrupt_ts, corrupted_hcp_group, CorruptionKind, CorruptionReport,
    CorruptionSpec,
};
pub use error::DatasetError;
pub use hcp::{HcpCohort, HcpCohortConfig};
pub use model::Session;
pub use task::Task;

/// Result alias for dataset generation.
pub type Result<T> = std::result::Result<T, DatasetError>;
