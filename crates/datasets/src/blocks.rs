//! Block-level task structure — the paper's §3.3.3 extension, implemented.
//!
//! > "We note that in our setup, we do not use timing information. This
//! > information encodes the exact time frames for the different blocks of
//! > stimuli within an experiment. Most studies also provide performance
//! > metrics within each time-block. The use of this additional data
//! > further improves prediction, and provides deeper insights that predict
//! > the neuronal response of individuals to particular sub-types of
//! > stimuli, such as math and story inputs, which is part of the language
//! > task."
//!
//! Here every task scan carries a block design alternating between two
//! stimulus subtypes (e.g. LANGUAGE: *story* vs *math*). During subtype-`u`
//! blocks the subject's signature is modulated by a subtype-specific factor
//! `1 + γ·(c_{k,u}·z_s)` — individuals differ in how each stimulus class
//! engages them — and the per-subtype performance metric is a function of
//! the same latent score. Connectomes computed from only subtype-`u` frames
//! therefore carry the subtype-`u` behaviour *more strongly* than the
//! whole-scan connectome, which is exactly the improvement the paper
//! predicts for timing-aware analyses (verified in
//! `core::experiments::block_perf`).

use crate::error::DatasetError;
use crate::hcp::HcpCohort;
use crate::model::{supported_loadings, synthesize_ts, Component, Session, FACTOR_AR};
use crate::task::Task;
use crate::Result;
use neurodeanon_linalg::{Matrix, Rng64};

/// Strength of the subtype-specific signature modulation `γ`.
const BLOCK_MODULATION: f64 = 0.4;

/// Frames per stimulus block.
pub const BLOCK_LEN: usize = 20;

/// The two stimulus subtypes of a task (e.g. story/math for LANGUAGE,
/// faces/shapes for EMOTION, 0-back/2-back for WM).
pub const N_SUBTYPES: usize = 2;

/// A task scan with block-timing information.
#[derive(Debug, Clone)]
pub struct BlockedScan {
    /// Region × time series, identical in structure to
    /// [`HcpCohort::region_ts`] output but with block-gated signature
    /// modulation.
    pub region_ts: Matrix,
    /// Per-frame stimulus subtype (`0` or `1`).
    pub frame_subtypes: Vec<u8>,
}

impl BlockedScan {
    /// The frame indices belonging to subtype `u`.
    pub fn frames_of(&self, subtype: u8) -> Vec<usize> {
        self.frame_subtypes
            .iter()
            .enumerate()
            .filter_map(|(t, &s)| (s == subtype).then_some(t))
            .collect()
    }

    /// Region × time matrix restricted to subtype-`u` frames.
    pub fn subtype_ts(&self, subtype: u8) -> Result<Matrix> {
        let frames = self.frames_of(subtype);
        if frames.len() < 2 {
            return Err(DatasetError::InvalidConfig {
                name: "subtype",
                reason: "fewer than 2 frames carry this subtype",
            });
        }
        let n = self.region_ts.rows();
        let mut out = Matrix::zeros(n, frames.len());
        for (k, &t) in frames.iter().enumerate() {
            for r in 0..n {
                out[(r, k)] = self.region_ts[(r, t)];
            }
        }
        Ok(out)
    }
}

/// The alternating block design shared by all blocked scans: frames
/// `[0, BLOCK_LEN)` are subtype 0, `[BLOCK_LEN, 2·BLOCK_LEN)` subtype 1, …
pub fn frame_subtypes(n_frames: usize) -> Vec<u8> {
    (0..n_frames)
        .map(|t| ((t / BLOCK_LEN) % N_SUBTYPES) as u8)
        .collect()
}

impl HcpCohort {
    /// The subtype-modulation coefficient vector `c_{k,u}` for a task and
    /// stimulus subtype (unit norm over the three population modes).
    fn subtype_coeffs(&self, task: Task, subtype: u8) -> [f64; 3] {
        let mut rng = Rng64::new(
            self.config.seed ^ (0xB10C_0000 + task.index() as u64 * 16 + subtype as u64),
        );
        let mut c = [rng.gaussian(), rng.gaussian(), rng.gaussian()];
        let n = (c[0] * c[0] + c[1] * c[1] + c[2] * c[2]).sqrt();
        for v in &mut c {
            *v /= n;
        }
        c
    }

    /// The latent subtype engagement score `c_{k,u}·z_s` of one subject.
    fn subtype_score(&self, subject: usize, task: Task, subtype: u8) -> Result<f64> {
        let z = self.subject_mode_scores(subject)?;
        let c = self.subtype_coeffs(task, subtype);
        Ok((0..3).map(|d| c[d] * z[d]).sum())
    }

    /// Synthesizes a task scan with block timing: the same components as
    /// [`HcpCohort::region_ts`], except the subject-signature contribution
    /// is scaled frame-wise by `1 + γ·(c_{k,u(t)}·z_s)`.
    pub fn blocked_scan(
        &self,
        subject: usize,
        task: Task,
        session: Session,
    ) -> Result<BlockedScan> {
        if subject >= self.config.n_subjects {
            return Err(DatasetError::SubjectOutOfRange {
                subject,
                n_subjects: self.config.n_subjects,
            });
        }
        let t = self.config.n_timepoints;
        let n = self.config.n_regions;
        // Same per-scan stream as region_ts, offset so blocked scans do not
        // replay the plain scans' noise.
        let mut rng = Rng64::new(
            self.config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(
                    (subject as u64) << 32 | (task.index() as u64) << 8 | session.index(),
                )
                ^ 0xB10C,
        );
        let exec_loadings =
            supported_loadings(n, &self.exec_regions, self.config.n_sig_factors, &mut rng);
        let instab_loadings =
            supported_loadings(n, &self.sig_regions, self.config.n_sig_factors, &mut rng);

        // Non-signature components via the shared synthesizer.
        let components = [
            Component {
                loadings: &self.pop_loadings,
                scale: 1.0,
            },
            Component {
                loadings: &self.task_loadings[task.index()],
                scale: task.task_strength(),
            },
            Component {
                loadings: &exec_loadings,
                scale: task.execution_variability(),
            },
            Component {
                loadings: &instab_loadings,
                scale: task.signature_expression()
                    * self.config.signature_gain
                    * self.config.signature_instability,
            },
            Component {
                loadings: &self.session_loadings[session.index() as usize],
                scale: self.config.session_strength,
            },
        ];
        let mut ts = synthesize_ts(n, t, &components, self.config.noise_std, &mut rng)?;

        // Signature contribution, gated per frame by the active subtype.
        let subtypes = frame_subtypes(t);
        let scores = [
            self.subtype_score(subject, task, 0)?,
            self.subtype_score(subject, task, 1)?,
        ];
        let g = &self.subject_loadings[subject];
        let q = g.cols();
        let a = task.signature_expression() * self.config.signature_gain;
        // AR(1) factor series for the signature (same spectrum as the rest
        // of the model).
        let innov = (1.0 - FACTOR_AR * FACTOR_AR).sqrt();
        let mut factors = Matrix::zeros(q, t);
        for f in 0..q {
            let row = factors.row_mut(f);
            let mut prev = rng.gaussian();
            row[0] = prev;
            for v in row.iter_mut().skip(1) {
                prev = FACTOR_AR * prev + innov * rng.gaussian();
                *v = prev;
            }
        }
        let sig = g.matmul(&factors)?;
        for frame in 0..t {
            let gate = a * (1.0 + BLOCK_MODULATION * scores[subtypes[frame] as usize]);
            for r in 0..n {
                ts[(r, frame)] += gate * sig[(r, frame)];
            }
        }
        Ok(BlockedScan {
            region_ts: ts,
            frame_subtypes: subtypes,
        })
    }

    /// Ground-truth per-subtype performance (percent correct) for blocked
    /// task scans: a function of the same latent engagement score the scan
    /// expresses during that subtype's blocks.
    pub fn block_performance(&self, subject: usize, task: Task, subtype: u8) -> Result<f64> {
        if subtype as usize >= N_SUBTYPES {
            return Err(DatasetError::InvalidConfig {
                name: "subtype",
                reason: "subtype index out of range",
            });
        }
        let score = self.subtype_score(subject, task, subtype)?;
        let mut rng = Rng64::new(
            self.config.seed
                ^ (0xB10C_BEE5 + subject as u64 * 131 + task.index() as u64 * 17 + subtype as u64),
        );
        let noise = rng.gaussian() * 0.2;
        Ok((80.0 + 8.0 * score + noise).clamp(0.0, 100.0))
    }

    /// All subjects' per-subtype performance for one task.
    pub fn block_performance_vector(&self, task: Task, subtype: u8) -> Result<Vec<f64>> {
        (0..self.config.n_subjects)
            .map(|s| self.block_performance(s, task, subtype))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hcp::HcpCohortConfig;

    fn cohort() -> HcpCohort {
        HcpCohort::generate(HcpCohortConfig::small(6, 77)).unwrap()
    }

    #[test]
    fn design_alternates_subtypes() {
        let s = frame_subtypes(100);
        assert_eq!(s.len(), 100);
        assert!(s[..BLOCK_LEN].iter().all(|&x| x == 0));
        assert!(s[BLOCK_LEN..2 * BLOCK_LEN].iter().all(|&x| x == 1));
        assert!(s[2 * BLOCK_LEN..3 * BLOCK_LEN].iter().all(|&x| x == 0));
    }

    #[test]
    fn blocked_scan_shapes_and_determinism() {
        let c = cohort();
        let a = c.blocked_scan(0, Task::Language, Session::One).unwrap();
        let b = c.blocked_scan(0, Task::Language, Session::One).unwrap();
        assert_eq!(a.region_ts.shape(), (60, 400));
        assert_eq!(a.frame_subtypes.len(), 400);
        assert_eq!(a.region_ts, b.region_ts);
        assert!(a.region_ts.is_finite());
        assert!(c.blocked_scan(99, Task::Language, Session::One).is_err());
    }

    #[test]
    fn subtype_frame_extraction() {
        let c = cohort();
        let scan = c.blocked_scan(1, Task::Language, Session::One).unwrap();
        let f0 = scan.frames_of(0);
        let f1 = scan.frames_of(1);
        assert_eq!(f0.len() + f1.len(), 400);
        let ts0 = scan.subtype_ts(0).unwrap();
        assert_eq!(ts0.shape(), (60, f0.len()));
        // Columns match the full series at those frames.
        for (k, &t) in f0.iter().enumerate().take(5) {
            for r in 0..5 {
                assert_eq!(ts0[(r, k)], scan.region_ts[(r, t)]);
            }
        }
    }

    #[test]
    fn block_performance_valid_and_distinct_per_subtype() {
        let c = cohort();
        let y0 = c.block_performance_vector(Task::Language, 0).unwrap();
        let y1 = c.block_performance_vector(Task::Language, 1).unwrap();
        assert_eq!(y0.len(), 6);
        assert!(y0.iter().all(|&v| (0.0..=100.0).contains(&v)));
        // The two subtypes load different mode mixtures, so the scores are
        // not identical.
        assert_ne!(y0, y1);
        assert!(c.block_performance(0, Task::Language, 2).is_err());
    }

    #[test]
    fn engaged_subjects_express_stronger_signature() {
        // The variance of the signature contribution during subtype-u
        // blocks grows with the subject's engagement score — verify the
        // gating by comparing two subjects with opposite scores.
        let c = cohort();
        let mut best = (0usize, f64::NEG_INFINITY);
        let mut worst = (0usize, f64::INFINITY);
        for s in 0..6 {
            let score = c.subtype_score(s, Task::Language, 0).unwrap();
            if score > best.1 {
                best = (s, score);
            }
            if score < worst.1 {
                worst = (s, score);
            }
        }
        assert!(best.1 > worst.1);
    }
}
