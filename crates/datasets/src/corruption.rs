//! Deterministic fault injection for robustness experiments.
//!
//! Real serving ingests connectomes from third-party pipelines with
//! censored frames, dropped regions, NaN voxels, truncated sessions, and
//! missing subjects. This module injects those faults *on purpose*,
//! severity-parameterized and seeded, so the degradation of the attack can
//! be measured as a curve rather than discovered as an outage.
//!
//! Two injection surfaces:
//!
//! * [`corrupt_ts`] — scanner-level faults on a region × time series
//!   (region dropout, NaN voxels, frame censoring, truncation, spikes).
//! * [`corrupt_group`] — pipeline-level faults on a finished features ×
//!   subjects [`GroupMatrix`] (feature dropout via region removal, NaN
//!   cells, whole-missing-subject columns).
//!
//! [`corrupted_hcp_group`] composes the first surface with connectome
//! construction (inject → optionally scrub → correlate), which is how the
//! robustness sweep produces its per-kind degradation curves.
//!
//! Severity is a dial in `[0, 1]`: `0.0` is bit-identical to the clean
//! input, `1.0` is the worst case the fault model covers (fractions below —
//! deliberately short of total destruction so the curve stays informative).

use crate::error::DatasetError;
use crate::hcp::HcpCohort;
use crate::model::Session;
use crate::task::Task;
use crate::Result;
use neurodeanon_connectome::{Connectome, EdgeIndex, GroupMatrix};
use neurodeanon_linalg::{Matrix, Rng64};

/// Fraction of regions lost at severity 1 (`NanRegions`).
const MAX_REGION_FRACTION: f64 = 0.5;
/// Fraction of cells lost at severity 1 (`NanCells`).
const MAX_CELL_FRACTION: f64 = 0.3;
/// Fraction of frames zeroed at severity 1 (`CensorFrames`).
const MAX_CENSOR_FRACTION: f64 = 0.6;
/// Fraction of the session cut at severity 1 (`TruncateSession`).
const MAX_TRUNCATE_FRACTION: f64 = 0.9;
/// Frames never truncated away: correlations need a floor of observations.
const MIN_KEPT_FRAMES: usize = 4;
/// Fraction of frames spiked at severity 1 (`Spikes`).
const MAX_SPIKE_FRACTION: f64 = 0.2;
/// Spike amplitude in units of the series' overall standard deviation.
const SPIKE_AMPLITUDE_SDS: f64 = 12.0;
/// Fraction of subjects lost at severity 1 (`DropSubjects`).
const MAX_SUBJECT_FRACTION: f64 = 0.5;

/// The fault model: every corruption kind the robustness layer injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionKind {
    /// Region dropout: whole region rows become NaN (time-series level) or
    /// every edge feature incident to a dropped region becomes NaN
    /// (group level) — an atlas/coverage failure.
    NanRegions,
    /// Scattered NaN voxels/cells — sparse reconstruction failures.
    NanCells,
    /// Censored frames: motion-flagged frames zeroed in place (the
    /// "scrubbed but not interpolated" convention some pipelines emit).
    CensorFrames,
    /// Truncated session: the scan simply stops early.
    TruncateSession,
    /// Motion spike artifacts: large additive deflections on a few frames —
    /// the fault [`scrub_spikes`](neurodeanon_preprocess::scrub::scrub_spikes)
    /// is designed to undo.
    Spikes,
    /// Whole-missing-subject columns in a group matrix (failed or withdrawn
    /// participants whose slot survives in the roster).
    DropSubjects,
}

impl CorruptionKind {
    /// Every kind, the iteration order of the robustness sweep.
    pub const ALL: [CorruptionKind; 6] = [
        CorruptionKind::NanRegions,
        CorruptionKind::NanCells,
        CorruptionKind::CensorFrames,
        CorruptionKind::TruncateSession,
        CorruptionKind::Spikes,
        CorruptionKind::DropSubjects,
    ];

    /// Stable lowercase name (JSONL records, CLI output).
    pub fn name(self) -> &'static str {
        match self {
            CorruptionKind::NanRegions => "nan_regions",
            CorruptionKind::NanCells => "nan_cells",
            CorruptionKind::CensorFrames => "censor_frames",
            CorruptionKind::TruncateSession => "truncate_session",
            CorruptionKind::Spikes => "spikes",
            CorruptionKind::DropSubjects => "drop_subjects",
        }
    }

    /// Whether this fault happens at the scanner (time-series) level.
    /// `DropSubjects` only exists once subjects are assembled into a group.
    pub fn is_time_series_level(self) -> bool {
        !matches!(self, CorruptionKind::DropSubjects)
    }

    /// Whether this fault can be applied directly to a finished group
    /// matrix. Frame-indexed faults need the time axis, which a connectome
    /// no longer has.
    pub fn is_group_level(self) -> bool {
        matches!(
            self,
            CorruptionKind::NanRegions | CorruptionKind::NanCells | CorruptionKind::DropSubjects
        )
    }
}

impl std::fmt::Display for CorruptionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fully specified injection: what, how hard, and from which stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionSpec {
    /// Which fault to inject.
    pub kind: CorruptionKind,
    /// Severity dial in `[0, 1]`; `0.0` leaves the input bit-identical.
    pub severity: f64,
    /// Seed of the injection stream (independent of the cohort seed, so the
    /// same cohort can be corrupted many ways).
    pub seed: u64,
}

impl CorruptionSpec {
    /// Validates the severity domain.
    pub fn validate(&self) -> Result<()> {
        if !(self.severity >= 0.0 && self.severity <= 1.0) {
            return Err(DatasetError::InvalidConfig {
                name: "severity",
                reason: "corruption severity must be in [0, 1]",
            });
        }
        Ok(())
    }
}

/// What an injection actually did — for logging next to sweep results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionReport {
    /// The injected kind.
    pub kind: CorruptionKind,
    /// The severity it was injected at.
    pub severity: f64,
    /// Units affected (regions, cells, frames, or subjects — per kind).
    pub affected: usize,
    /// Units available (denominator of `affected`).
    pub total: usize,
}

fn scaled_count(n: usize, fraction: f64, severity: f64) -> usize {
    ((n as f64) * fraction * severity).round() as usize
}

/// Injects a scanner-level fault into a region × time series, returning the
/// corrupted copy and a report. `DropSubjects` is rejected with a typed
/// error — a single scan has no subject axis.
pub fn corrupt_ts(ts: &Matrix, spec: &CorruptionSpec) -> Result<(Matrix, CorruptionReport)> {
    spec.validate()?;
    if !spec.kind.is_time_series_level() {
        return Err(DatasetError::InvalidConfig {
            name: "kind",
            reason: "subject-level corruption cannot apply to a single time series",
        });
    }
    let mut rng = Rng64::new(spec.seed);
    let (n_regions, t) = ts.shape();
    let mut out = ts.clone();
    let report = |affected, total| CorruptionReport {
        kind: spec.kind,
        severity: spec.severity,
        affected,
        total,
    };
    match spec.kind {
        CorruptionKind::NanRegions => {
            let k = scaled_count(n_regions, MAX_REGION_FRACTION, spec.severity);
            let bad = rng.sample_indices(n_regions, k);
            for &r in &bad {
                for v in out.row_mut(r) {
                    *v = f64::NAN;
                }
            }
            Ok((out, report(bad.len(), n_regions)))
        }
        CorruptionKind::NanCells => {
            let n_cells = n_regions * t;
            let k = scaled_count(n_cells, MAX_CELL_FRACTION, spec.severity);
            let bad = rng.sample_indices(n_cells, k);
            let slice = out.as_mut_slice();
            for &c in &bad {
                slice[c] = f64::NAN;
            }
            Ok((out, report(bad.len(), n_cells)))
        }
        CorruptionKind::CensorFrames => {
            let k = scaled_count(t, MAX_CENSOR_FRACTION, spec.severity);
            let bad = rng.sample_indices(t, k);
            for r in 0..n_regions {
                let row = out.row_mut(r);
                for &f in &bad {
                    row[f] = 0.0;
                }
            }
            Ok((out, report(bad.len(), t)))
        }
        CorruptionKind::TruncateSession => {
            let cut = scaled_count(t, MAX_TRUNCATE_FRACTION, spec.severity);
            let keep = t.saturating_sub(cut).max(MIN_KEPT_FRAMES.min(t));
            if keep == t {
                return Ok((out, report(0, t)));
            }
            let trunc = Matrix::from_fn(n_regions, keep, |r, c| ts[(r, c)]);
            Ok((trunc, report(t - keep, t)))
        }
        CorruptionKind::Spikes => {
            let k = scaled_count(t, MAX_SPIKE_FRACTION, spec.severity);
            let bad = rng.sample_indices(t, k);
            // Amplitude in units of the series' own spread, so the fault is
            // equally violent at any signal scale.
            let mut w = neurodeanon_linalg::stats::Welford::new();
            for &v in ts.as_slice() {
                w.push(v);
            }
            let amp = SPIKE_AMPLITUDE_SDS * w.variance().sqrt().max(1e-12);
            for &f in &bad {
                // Coherent whole-image deflection with a per-frame sign —
                // what subject motion actually looks like to an atlas.
                let sign = if rng.uniform() < 0.5 { -1.0 } else { 1.0 };
                for r in 0..n_regions {
                    out[(r, f)] += sign * amp * (1.0 + 0.1 * rng.gaussian());
                }
            }
            Ok((out, report(bad.len(), t)))
        }
        CorruptionKind::DropSubjects => unreachable!("rejected above"),
    }
}

/// Injects a pipeline-level fault into a finished group matrix, returning
/// the corrupted copy and a report. Frame-indexed kinds (`CensorFrames`,
/// `TruncateSession`, `Spikes`) are rejected with a typed error — the time
/// axis no longer exists.
pub fn corrupt_group(
    group: &GroupMatrix,
    spec: &CorruptionSpec,
) -> Result<(GroupMatrix, CorruptionReport)> {
    spec.validate()?;
    if !spec.kind.is_group_level() {
        return Err(DatasetError::InvalidConfig {
            name: "kind",
            reason: "frame-indexed corruption cannot apply to a finished group matrix",
        });
    }
    let mut rng = Rng64::new(spec.seed);
    let mut out = group.clone();
    let n_subjects = out.n_subjects();
    let report = |affected, total| CorruptionReport {
        kind: spec.kind,
        severity: spec.severity,
        affected,
        total,
    };
    match spec.kind {
        CorruptionKind::NanRegions => {
            let n_regions = group.n_regions();
            let k = scaled_count(n_regions, MAX_REGION_FRACTION, spec.severity);
            let bad: std::collections::HashSet<usize> =
                rng.sample_indices(n_regions, k).into_iter().collect();
            let idx = EdgeIndex::new(n_regions)?;
            let m = out.as_matrix_mut();
            for (f, (a, b)) in idx.iter().enumerate() {
                if bad.contains(&a) || bad.contains(&b) {
                    for v in m.row_mut(f) {
                        *v = f64::NAN;
                    }
                }
            }
            Ok((out, report(bad.len(), n_regions)))
        }
        CorruptionKind::NanCells => {
            let m = out.as_matrix_mut();
            let n_cells = m.rows() * m.cols();
            let k = scaled_count(n_cells, MAX_CELL_FRACTION, spec.severity);
            let bad = rng.sample_indices(n_cells, k);
            let slice = m.as_mut_slice();
            for &c in &bad {
                slice[c] = f64::NAN;
            }
            Ok((out, report(bad.len(), n_cells)))
        }
        CorruptionKind::DropSubjects => {
            let k = scaled_count(n_subjects, MAX_SUBJECT_FRACTION, spec.severity);
            let bad = rng.sample_indices(n_subjects, k);
            let m = out.as_matrix_mut();
            for r in 0..m.rows() {
                let row = m.row_mut(r);
                for &s in &bad {
                    row[s] = f64::NAN;
                }
            }
            Ok((out, report(bad.len(), n_subjects)))
        }
        _ => unreachable!("rejected above"),
    }
}

/// Builds the features × subjects group matrix for one condition with a
/// fault injected, composing injection with the real pipeline ordering:
///
/// * time-series kinds: raw scan → inject → scrub (if the cohort has
///   [`scrub_fd_threshold`](crate::HcpCohortConfig::scrub_fd_threshold)
///   set) → connectome. NaN regions propagate to NaN edge features through
///   the correlation, exactly as a real pipeline emits them.
/// * group kinds: clean group matrix → inject.
///
/// Per-subject injection streams are forked from `spec.seed`, so a given
/// `(spec, cohort)` pair is fully deterministic.
pub fn corrupted_hcp_group(
    cohort: &HcpCohort,
    task: Task,
    session: Session,
    spec: &CorruptionSpec,
) -> Result<GroupMatrix> {
    spec.validate()?;
    if spec.kind.is_group_level() && !spec.kind.is_time_series_level() {
        // DropSubjects: only expressible on the assembled group.
        let group = cohort.group_matrix(task, session)?;
        return corrupt_group(&group, spec).map(|(g, _)| g);
    }
    let mut master = Rng64::new(spec.seed);
    let n = cohort.n_subjects();
    let config = cohort.config();
    let n_features = config.n_regions * (config.n_regions - 1) / 2;
    let mut data = Matrix::zeros(n_features, n);
    let mut ids = Vec::with_capacity(n);
    for s in 0..n {
        let sub_spec = CorruptionSpec {
            seed: master.fork(s as u64).next_u64(),
            ..*spec
        };
        let raw = cohort.region_ts_raw(s, task, session)?;
        let (mut ts, _) = corrupt_ts(&raw, &sub_spec)?;
        if let Some(th) = config.scrub_fd_threshold {
            neurodeanon_preprocess::scrub::scrub_spikes(&mut ts, th)?;
        }
        let conn = Connectome::from_region_ts(&ts)?;
        data.set_col(s, &conn.vectorize())?;
        ids.push(format!(
            "{}/{}/{}",
            cohort.subject_id(s),
            task.name(),
            session.encoding()
        ));
    }
    GroupMatrix::from_matrix(data, ids, config.n_regions).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hcp::HcpCohortConfig;

    fn ts() -> Matrix {
        Matrix::from_fn(10, 50, |r, c| ((r * 17 + c * 5) % 23) as f64 * 0.1)
    }

    fn spec(kind: CorruptionKind, severity: f64) -> CorruptionSpec {
        CorruptionSpec {
            kind,
            severity,
            seed: 7,
        }
    }

    #[test]
    fn severity_zero_is_identity() {
        let m = ts();
        for kind in CorruptionKind::ALL {
            if !kind.is_time_series_level() {
                continue;
            }
            let (out, rep) = corrupt_ts(&m, &spec(kind, 0.0)).unwrap();
            assert_eq!(out, m, "{kind}");
            assert_eq!(rep.affected, 0);
        }
    }

    #[test]
    fn injection_is_deterministic() {
        let m = ts();
        let s = spec(CorruptionKind::NanCells, 0.5);
        let (a, _) = corrupt_ts(&m, &s).unwrap();
        let (b, _) = corrupt_ts(&m, &s).unwrap();
        assert_eq!(
            a.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn nan_regions_blank_whole_rows() {
        let (out, rep) = corrupt_ts(&ts(), &spec(CorruptionKind::NanRegions, 1.0)).unwrap();
        assert_eq!(rep.affected, 5); // 0.5 × 10 regions
        let nan_rows = (0..out.rows())
            .filter(|&r| out.row(r).iter().all(|x| x.is_nan()))
            .count();
        assert_eq!(nan_rows, 5);
    }

    #[test]
    fn truncate_respects_floor_and_severity() {
        let m = ts();
        let (out, rep) = corrupt_ts(&m, &spec(CorruptionKind::TruncateSession, 1.0)).unwrap();
        assert_eq!(out.cols(), 50 - rep.affected);
        assert!(out.cols() >= MIN_KEPT_FRAMES);
        let (mild, _) = corrupt_ts(&m, &spec(CorruptionKind::TruncateSession, 0.2)).unwrap();
        assert!(mild.cols() > out.cols());
    }

    #[test]
    fn spikes_change_flagged_frames_only() {
        let m = ts();
        let (out, rep) = corrupt_ts(&m, &spec(CorruptionKind::Spikes, 0.5)).unwrap();
        assert!(rep.affected > 0);
        let changed: Vec<usize> = (0..m.cols())
            .filter(|&c| (0..m.rows()).any(|r| out[(r, c)] != m[(r, c)]))
            .collect();
        assert_eq!(changed.len(), rep.affected);
    }

    #[test]
    fn kind_surface_mismatches_are_typed_errors() {
        let m = ts();
        assert!(matches!(
            corrupt_ts(&m, &spec(CorruptionKind::DropSubjects, 0.5)),
            Err(DatasetError::InvalidConfig { name: "kind", .. })
        ));
        let cohort = HcpCohort::generate(HcpCohortConfig::small(4, 3)).unwrap();
        let g = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        for kind in [
            CorruptionKind::CensorFrames,
            CorruptionKind::TruncateSession,
            CorruptionKind::Spikes,
        ] {
            assert!(matches!(
                corrupt_group(&g, &spec(kind, 0.5)),
                Err(DatasetError::InvalidConfig { name: "kind", .. })
            ));
        }
        assert!(corrupt_ts(&m, &spec(CorruptionKind::NanCells, 1.5)).is_err());
        assert!(corrupt_ts(&m, &spec(CorruptionKind::NanCells, f64::NAN)).is_err());
    }

    #[test]
    fn drop_subjects_blanks_columns() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(6, 3)).unwrap();
        let g = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let (out, rep) = corrupt_group(&g, &spec(CorruptionKind::DropSubjects, 1.0)).unwrap();
        assert_eq!(rep.affected, 3); // 0.5 × 6 subjects
        let m = out.as_matrix();
        let nan_cols = (0..m.cols())
            .filter(|&s| (0..m.rows()).all(|f| m[(f, s)].is_nan()))
            .count();
        assert_eq!(nan_cols, 3);
        assert_eq!(out.subject_ids(), g.subject_ids());
    }

    #[test]
    fn group_nan_regions_blank_incident_edges() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(4, 3)).unwrap();
        let g = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let (out, rep) = corrupt_group(&g, &spec(CorruptionKind::NanRegions, 0.4)).unwrap();
        assert!(rep.affected > 0);
        // Every feature row is either fully NaN or fully finite.
        let m = out.as_matrix();
        for f in 0..m.rows() {
            let nans = m.row(f).iter().filter(|x| x.is_nan()).count();
            assert!(nans == 0 || nans == m.cols());
        }
    }

    #[test]
    fn corrupted_group_propagates_nan_regions_to_edges() {
        let cohort = HcpCohort::generate(HcpCohortConfig::small(4, 9)).unwrap();
        let g = corrupted_hcp_group(
            &cohort,
            Task::Rest,
            Session::One,
            &spec(CorruptionKind::NanRegions, 0.6),
        )
        .unwrap();
        let n_nan = g
            .as_matrix()
            .as_slice()
            .iter()
            .filter(|x| x.is_nan())
            .count();
        assert!(n_nan > 0, "NaN regions must surface as NaN edge features");
        // Per-subject streams differ: not every subject loses the same rows,
        // so at least one feature row is partially observed.
        let m = g.as_matrix();
        let partial = (0..m.rows()).any(|f| {
            let nans = m.row(f).iter().filter(|x| x.is_nan()).count();
            nans > 0 && nans < m.cols()
        });
        assert!(partial);
    }

    #[test]
    fn scrub_recovers_spiked_group() {
        // Inject-then-scrub must land closer to the clean group than
        // inject alone: the round trip the robustness sweep measures.
        let cohort = HcpCohort::generate(HcpCohortConfig::small(3, 11)).unwrap();
        let clean = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let s = spec(CorruptionKind::Spikes, 0.8);
        let hurt = corrupted_hcp_group(&cohort, Task::Rest, Session::One, &s).unwrap();
        let scrubbed_cohort = cohort.with_scrub_threshold(Some(3.0)).unwrap();
        let recovered =
            corrupted_hcp_group(&scrubbed_cohort, Task::Rest, Session::One, &s).unwrap();
        let dist = |a: &GroupMatrix, b: &GroupMatrix| -> f64 {
            a.as_matrix()
                .as_slice()
                .iter()
                .zip(b.as_matrix().as_slice())
                .map(|(x, y)| (x - y).abs())
                .sum::<f64>()
        };
        let d_hurt = dist(&hurt, &clean);
        let d_rec = dist(&recovered, &clean);
        assert!(d_rec < d_hurt, "scrub {d_rec} vs raw {d_hurt}");
    }
}
