//! The HCP-like cohort: 100 "unrelated subjects", two sessions, resting
//! state plus seven tasks, with task-performance phenotypes.

use crate::error::DatasetError;
use crate::model::{
    complement_regions, dense_loadings, signature_regions, supported_loadings, synthesize_ts,
    Component, Session,
};
use crate::task::Task;
use crate::Result;
use neurodeanon_connectome::{Connectome, GroupMatrix};
use neurodeanon_linalg::svd::thin_svd;
use neurodeanon_linalg::{Matrix, Rng64};

/// Cohort configuration. Defaults reproduce the paper's setting: 100
/// subjects, 360 regions (⇒ 64,620 features), HCP-like scan length.
#[derive(Debug, Clone)]
pub struct HcpCohortConfig {
    /// Number of subjects (paper: 100 unrelated subjects).
    pub n_subjects: usize,
    /// Atlas regions (paper: Glasser 360).
    pub n_regions: usize,
    /// Time points per scan session.
    pub n_timepoints: usize,
    /// Factors in the population component.
    pub n_pop_factors: usize,
    /// Factors per task component.
    pub n_task_factors: usize,
    /// Factors in each subject signature.
    pub n_sig_factors: usize,
    /// Number of signature regions (support of the subject component).
    pub n_sig_regions: usize,
    /// White measurement noise standard deviation.
    pub noise_std: f64,
    /// Amplitude of the session-specific (phase-encoding) component.
    pub session_strength: f64,
    /// Overall gain on the subject-signature component (scales both the
    /// stable signature and its instability): controls how strongly
    /// signature edges correlate. Real connectome edges are strong
    /// (|ρ| ≈ 0.4–0.9); the default gain lands there.
    pub signature_gain: f64,
    /// Signature instability: amplitude (relative to the task's signature
    /// expression) of a session-fresh perturbation *on the signature
    /// regions* — day-to-day state change in the individual pattern. This
    /// is what keeps same-subject sessions from being trivially identical
    /// and gives the multi-site noise sweep (Table 2) room to erode
    /// accuracy.
    pub signature_instability: f64,
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Optional motion-scrubbing threshold applied to every synthesized
    /// region × time series before connectome construction (the multiplier
    /// handed to [`neurodeanon_preprocess::scrub::scrub_spikes`]: frames
    /// whose framewise displacement exceeds `threshold × median` are
    /// censored and interpolated). `None` (the default) leaves the series
    /// untouched, bit-identical to pre-scrubbing cohorts; the robustness
    /// sweep enables it to round-trip injected spike artifacts through the
    /// censoring path.
    pub scrub_fd_threshold: Option<f64>,
}

impl Default for HcpCohortConfig {
    fn default() -> Self {
        HcpCohortConfig {
            n_subjects: 100,
            n_regions: 360,
            n_timepoints: 480,
            n_pop_factors: 40,
            n_task_factors: 12,
            n_sig_factors: 5,
            n_sig_regions: 72,
            noise_std: 0.25,
            session_strength: 0.12,
            signature_gain: 2.2,
            signature_instability: 0.35,
            seed: 0x4c50_2021,
            scrub_fd_threshold: None,
        }
    }
}

impl HcpCohortConfig {
    /// A reduced configuration for unit/integration tests: fewer subjects
    /// and regions, same phenomenon.
    pub fn small(n_subjects: usize, seed: u64) -> Self {
        HcpCohortConfig {
            n_subjects,
            n_regions: 60,
            n_timepoints: 400,
            n_pop_factors: 15,
            n_task_factors: 6,
            n_sig_factors: 4,
            n_sig_regions: 14,
            seed,
            ..Default::default()
        }
    }

    fn validate(&self) -> Result<()> {
        if self.n_subjects == 0 {
            return Err(DatasetError::InvalidConfig {
                name: "n_subjects",
                reason: "need at least one subject",
            });
        }
        if self.n_regions < 4 {
            return Err(DatasetError::InvalidConfig {
                name: "n_regions",
                reason: "need at least 4 regions",
            });
        }
        if self.n_timepoints < 16 {
            return Err(DatasetError::InvalidConfig {
                name: "n_timepoints",
                reason: "need at least 16 time points for stable correlations",
            });
        }
        if self.n_sig_regions == 0 || self.n_sig_regions > self.n_regions {
            return Err(DatasetError::InvalidConfig {
                name: "n_sig_regions",
                reason: "signature regions must be in 1..=n_regions",
            });
        }
        if self.n_pop_factors == 0 || self.n_task_factors == 0 || self.n_sig_factors == 0 {
            return Err(DatasetError::InvalidConfig {
                name: "factors",
                reason: "every component needs at least one factor",
            });
        }
        if !(self.noise_std >= 0.0 && self.noise_std.is_finite()) {
            return Err(DatasetError::InvalidConfig {
                name: "noise_std",
                reason: "must be non-negative and finite",
            });
        }
        if let Some(th) = self.scrub_fd_threshold {
            // Same domain scrub_spikes itself enforces; reject at config
            // time so a bad threshold cannot fail deep inside a sweep.
            if !(th > 1.0 && th.is_finite()) {
                return Err(DatasetError::InvalidConfig {
                    name: "scrub_fd_threshold",
                    reason: "scrub threshold must be a finite multiplier > 1",
                });
            }
        }
        Ok(())
    }
}

/// A generated HCP-like cohort. Loadings are materialized once; time series
/// are synthesized on demand (deterministically) per (subject, task,
/// session).
#[derive(Debug, Clone)]
pub struct HcpCohort {
    pub(crate) config: HcpCohortConfig,
    pub(crate) pop_loadings: Matrix,
    /// One loading matrix per task, [`Task::ALL`] order.
    pub(crate) task_loadings: Vec<Matrix>,
    pub(crate) session_loadings: [Matrix; 2],
    pub(crate) sig_regions: Vec<usize>,
    /// Support of the task-execution variability component (disjoint from
    /// the signature regions).
    pub(crate) exec_regions: Vec<usize>,
    /// Per-subject signature loadings (shared base + population modes +
    /// idiosyncratic part, combined).
    pub(crate) subject_loadings: Vec<Matrix>,
    /// Per-subject scores on the three population variability modes.
    pub(crate) subject_modes: Vec<[f64; 3]>,
    /// Per-(task, subject) ground-truth performance scores (percent),
    /// empty for tasks without metrics.
    performance: Vec<Vec<f64>>,
}

/// Weight of the shared base pattern inside a subject signature. A strong
/// common base makes *different* subjects' connectomes realistically
/// similar (the paper's Figure 1 off-diagonals are high, not near zero),
/// which keeps identification margins slim.
const BASE_WEIGHT: f64 = 5.0;
/// Weight of each population variability mode inside a subject signature.
const MODE_WEIGHT: f64 = 2.0;
/// Weight of the idiosyncratic (fingerprint) part of a subject signature.
const IDIO_WEIGHT: f64 = 1.4;

impl HcpCohort {
    /// Generates the cohort from a configuration.
    pub fn generate(config: HcpCohortConfig) -> Result<Self> {
        config.validate()?;
        let mut master = Rng64::new(config.seed);
        let mut rng_pop = master.fork(1);
        let pop_loadings = dense_loadings(config.n_regions, config.n_pop_factors, &mut rng_pop);

        // Task components. GAMBLING shares half its factor columns with
        // REST's loading, producing the Figure 6 rest ↔ gambling confusion.
        let mut task_loadings: Vec<Matrix> = Vec::with_capacity(8);
        let mut rest_loading = None;
        for task in Task::ALL {
            let mut rng_t = master.fork(100 + task.index() as u64);
            let mut l = dense_loadings(config.n_regions, config.n_task_factors, &mut rng_t);
            if task == Task::Rest {
                rest_loading = Some(l.clone());
            }
            if task == Task::Gambling {
                // GAMBLING shares half its factor columns with REST, so
                // their t-SNE clusters sit closest together (the paper
                // reports occasional rest → gambling confusion; our
                // synthetic clusters stay separable — see EXPERIMENTS.md E4).
                let rest = rest_loading
                    .as_ref()
                    .expect("REST precedes GAMBLING in ALL");
                let shared = config.n_task_factors / 2;
                for c in 0..shared {
                    for r in 0..config.n_regions {
                        l[(r, c)] = rest[(r, c)];
                    }
                }
            }
            task_loadings.push(l);
        }

        let mut rng_s1 = master.fork(200);
        let mut rng_s2 = master.fork(201);
        let session_loadings = [
            dense_loadings(config.n_regions, 4, &mut rng_s1),
            dense_loadings(config.n_regions, 4, &mut rng_s2),
        ];

        let sig_regions = signature_regions(config.n_regions, config.n_sig_regions);
        let exec_regions = complement_regions(config.n_regions, &sig_regions, config.n_sig_regions);
        // Subject signatures decompose as
        //   G_s = (BASE_WEIGHT · B0 + MODE_WEIGHT · Σ_d z_{s,d} D_d
        //          + IDIO_WEIGHT · H_s) / norm
        // with a shared base B0, three fixed population variability modes
        // D_d scored per subject by z_{s,d} ~ N(0,1), and an idiosyncratic
        // part H_s. The modes give inter-subject connectome variation a
        // dominant low-dimensional structure (the "brain-behaviour mode"
        // phenomenon); the idiosyncratic part carries the fingerprint.
        // The shared base is rank-1: all signature regions load one common
        // factor, which is what makes signature edges *strong* (|ρ| well
        // above 0.5), as real connectome edges are.
        let base_sig = {
            let col = supported_loadings(config.n_regions, &sig_regions, 1, &mut master.fork(500));
            let mut m = Matrix::zeros(config.n_regions, config.n_sig_factors);
            for r in 0..config.n_regions {
                // supported_loadings(…, 1, …) uses sd 1; keep that scale.
                m[(r, 0)] = col[(r, 0)];
            }
            m
        };
        let mode_dirs: Vec<Matrix> = (0..3)
            .map(|d| {
                supported_loadings(
                    config.n_regions,
                    &sig_regions,
                    config.n_sig_factors,
                    &mut master.fork(501 + d),
                )
            })
            .collect();
        // Normalize so the combined signature keeps unit-order covariance.
        let norm = (BASE_WEIGHT * BASE_WEIGHT
            + 3.0 * MODE_WEIGHT * MODE_WEIGHT
            + IDIO_WEIGHT * IDIO_WEIGHT)
            .sqrt();
        let mut subject_loadings = Vec::with_capacity(config.n_subjects);
        let mut subject_modes = Vec::with_capacity(config.n_subjects);
        for s in 0..config.n_subjects {
            let mut rng_sub = master.fork(1000 + s as u64);
            let z = [rng_sub.gaussian(), rng_sub.gaussian(), rng_sub.gaussian()];
            let idio = supported_loadings(
                config.n_regions,
                &sig_regions,
                config.n_sig_factors,
                &mut rng_sub,
            );
            let mut g = base_sig.scaled(BASE_WEIGHT);
            for (d, dir) in mode_dirs.iter().enumerate() {
                g = g.add(&dir.scaled(MODE_WEIGHT * z[d]))?;
            }
            g = g.add(&idio.scaled(IDIO_WEIGHT))?;
            g.scale_mut(1.0 / norm);
            subject_loadings.push(g);
            subject_modes.push(z);
        }

        // Task performance phenotypes. Behaviour correlates with the
        // dominant modes of inter-subject connectome variation (the
        // brain-behaviour-mode premise behind Finn et al.'s fluid-
        // intelligence prediction), so each task's score is a task-specific
        // mixture of the leading principal components of the latent
        // signature-pair matrix across the cohort, standardized into a
        // percent-accuracy band, plus a grain of unmodelled noise.
        let mut cohort = HcpCohort {
            config,
            pop_loadings,
            task_loadings,
            session_loadings,
            sig_regions,
            exec_regions,
            subject_loadings,
            subject_modes,
            performance: vec![Vec::new(); 8],
        };
        cohort.performance = cohort.build_performance(&mut master)?;
        Ok(cohort)
    }

    /// The *expected* correlation features of one subject on the signature
    /// pairs, for a given condition and session: the population value the
    /// noisy per-scan Pearson estimates concentrate around.
    fn expected_sig_corr(&self, subject: usize, task: Task, session: Session) -> Vec<f64> {
        let k = self.sig_regions.len();
        let a = task.signature_expression() * self.config.signature_gain;
        let b = task.task_strength();
        let sess = self.config.session_strength;
        // Covariance restricted to signature regions:
        // Σ = A Aᵀ + b² B Bᵀ + sess² E Eᵀ + a² G Gᵀ + σ² I.
        let sub = |m: &Matrix, i: usize, j: usize| -> f64 {
            let ri = self.sig_regions[i];
            let rj = self.sig_regions[j];
            let mut acc = 0.0;
            for f in 0..m.cols() {
                acc += m[(ri, f)] * m[(rj, f)];
            }
            acc
        };
        let bl = &self.task_loadings[task.index()];
        let el = &self.session_loadings[session.index() as usize];
        let g = &self.subject_loadings[subject];
        let mut cov = Matrix::zeros(k, k);
        for i in 0..k {
            for j in i..k {
                let mut v = sub(&self.pop_loadings, i, j)
                    + b * b * sub(bl, i, j)
                    + sess * sess * sub(el, i, j)
                    + a * a * sub(g, i, j);
                if i == j {
                    v += self.config.noise_std * self.config.noise_std;
                }
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        let mut out = Vec::with_capacity(k * (k - 1) / 2);
        for i in 0..k {
            for j in (i + 1)..k {
                out.push(cov[(i, j)] / (cov[(i, i)] * cov[(j, j)]).sqrt());
            }
        }
        out
    }

    /// Builds per-task performance vectors: each task's score is a
    /// task-specific mixture of the leading principal components of the
    /// cohort's *expected* connectome features on the signature pairs —
    /// the dominant axes of inter-subject connectome variation, which is
    /// what real brain-behaviour modes look like. Scores are scaled into a
    /// percent-accuracy band plus a grain of unmodelled noise; per-task
    /// noise levels are tuned to the Table 1 ordering (Emotion lowest test
    /// error, Relational highest).
    fn build_performance(&self, master: &mut Rng64) -> Result<Vec<Vec<f64>>> {
        let n = self.config.n_subjects;
        let n_pairs = self.sig_regions.len() * (self.sig_regions.len() - 1) / 2;
        let n_modes = 3usize.min(n);
        let task_noise = |task: Task| -> f64 {
            match task {
                Task::Emotion => 0.08,
                Task::Language => 0.30,
                Task::WorkingMemory => 0.40,
                Task::Relational => 0.75,
                _ => 0.0,
            }
        };
        let mut out = vec![Vec::new(); 8];
        if n < 2 {
            for task in Task::ALL {
                if task.has_performance_metric() {
                    out[task.index()] = vec![80.0; n];
                }
            }
            return Ok(out);
        }
        for task in Task::ALL {
            if !task.has_performance_metric() {
                continue;
            }
            // Expected-feature matrix for this task (session 1, the session
            // the Table 1 protocol trains on), rows centered.
            let mut pair_matrix = Matrix::zeros(n_pairs, n);
            for s in 0..n {
                pair_matrix.set_col(s, &self.expected_sig_corr(s, task, Session::One))?;
            }
            for r in 0..pair_matrix.rows() {
                let row = pair_matrix.row_mut(r);
                let mean = row.iter().sum::<f64>() / n as f64;
                for v in row.iter_mut() {
                    *v -= mean;
                }
            }
            // Subject-space modes: right singular vectors.
            let svd = if pair_matrix.rows() >= pair_matrix.cols() {
                thin_svd(&pair_matrix)?
            } else {
                let f = thin_svd(&pair_matrix.transpose())?;
                neurodeanon_linalg::svd::Svd {
                    u: f.v.clone(),
                    sigma: f.sigma.clone(),
                    v: f.u.clone(),
                }
            };
            let mut rng_w = master.fork(300 + task.index() as u64);
            let coeffs: Vec<f64> = (0..n_modes).map(|_| rng_w.gaussian()).collect();
            let mut scores: Vec<f64> = (0..n)
                .map(|s| (0..n_modes).map(|d| coeffs[d] * svd.v[(s, d)]).sum::<f64>())
                .collect();
            // Standardize across the cohort, then scale into percent band.
            let mean = scores.iter().sum::<f64>() / n as f64;
            let var = scores.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            let sd = var.sqrt().max(1e-12);
            for z in &mut scores {
                *z = (*z - mean) / sd;
            }
            out[task.index()] = scores
                .iter()
                .enumerate()
                .map(|(s, &z)| {
                    let mut rng_n = Rng64::new(
                        self.config.seed ^ (0xBEE5 + s as u64 * 31 + task.index() as u64),
                    );
                    let noise = rng_n.gaussian() * task_noise(task);
                    (80.0 + 8.0 * z + noise).clamp(0.0, 100.0)
                })
                .collect();
        }
        Ok(out)
    }

    /// Cohort configuration.
    pub fn config(&self) -> &HcpCohortConfig {
        &self.config
    }

    /// Number of subjects.
    pub fn n_subjects(&self) -> usize {
        self.config.n_subjects
    }

    /// The signature-region indices (ground truth the attack rediscovers).
    pub fn signature_regions(&self) -> &[usize] {
        &self.sig_regions
    }

    /// Ground-truth population-mode scores `z_{s,d}` of one subject — the
    /// latent axes behind the performance phenotypes (for diagnostics and
    /// oracle comparisons in the benches).
    pub fn subject_mode_scores(&self, subject: usize) -> Result<[f64; 3]> {
        self.subject_modes
            .get(subject)
            .copied()
            .ok_or(DatasetError::SubjectOutOfRange {
                subject,
                n_subjects: self.config.n_subjects,
            })
    }

    /// Subject label used in group matrices.
    pub fn subject_id(&self, subject: usize) -> String {
        format!("sub{subject:04}")
    }

    /// Synthesizes the region × time series for one scan, applying the
    /// configured motion scrubbing (if any) — see
    /// [`HcpCohortConfig::scrub_fd_threshold`].
    pub fn region_ts(&self, subject: usize, task: Task, session: Session) -> Result<Matrix> {
        let mut ts = self.region_ts_raw(subject, task, session)?;
        if let Some(th) = self.config.scrub_fd_threshold {
            neurodeanon_preprocess::scrub::scrub_spikes(&mut ts, th)?;
        }
        Ok(ts)
    }

    /// The unscrubbed region × time series for one scan — what the scanner
    /// produced before any censoring. The corruption module injects faults
    /// here so that scrubbing can then be measured as a *recovery* step
    /// (inject → scrub → connectome), matching a real pipeline's ordering.
    pub fn region_ts_raw(&self, subject: usize, task: Task, session: Session) -> Result<Matrix> {
        if subject >= self.config.n_subjects {
            return Err(DatasetError::SubjectOutOfRange {
                subject,
                n_subjects: self.config.n_subjects,
            });
        }
        let mut rng = Rng64::new(
            self.config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(
                    (subject as u64) << 32 | (task.index() as u64) << 8 | session.index(),
                ),
        );
        // Signature instability: a session-fresh perturbation on the
        // signature regions, proportional to the signature expression.
        let instab_loadings = supported_loadings(
            self.config.n_regions,
            &self.sig_regions,
            self.config.n_sig_factors,
            &mut rng,
        );
        // Task-execution variability: a fresh loading per scan, supported
        // on the execution regions (disjoint from the signature support).
        // It is deterministic for the scan (drawn from the scan's own
        // stream) but does not reproduce across sessions, so it floods the
        // leverage selection with non-reproducible features — the Figure 5
        // mechanism that makes MOTOR/WM rows ineffective.
        let exec_loadings = supported_loadings(
            self.config.n_regions,
            &self.exec_regions,
            self.config.n_sig_factors,
            &mut rng,
        );
        let components = [
            Component {
                loadings: &self.pop_loadings,
                scale: 1.0,
            },
            Component {
                loadings: &self.task_loadings[task.index()],
                scale: task.task_strength(),
            },
            Component {
                loadings: &self.subject_loadings[subject],
                scale: task.signature_expression() * self.config.signature_gain,
            },
            Component {
                loadings: &exec_loadings,
                scale: task.execution_variability(),
            },
            Component {
                loadings: &instab_loadings,
                scale: task.signature_expression()
                    * self.config.signature_gain
                    * self.config.signature_instability,
            },
            Component {
                loadings: &self.session_loadings[session.index() as usize],
                scale: self.config.session_strength,
            },
        ];
        synthesize_ts(
            self.config.n_regions,
            self.config.n_timepoints,
            &components,
            self.config.noise_std,
            &mut rng,
        )
    }

    /// A copy of this cohort with motion scrubbing switched on (or off, via
    /// `None`) for every subsequently synthesized scan. Loadings and
    /// phenotypes are shared unchanged, so the scrubbed and unscrubbed
    /// cohorts describe the same subjects — exactly what the robustness
    /// sweep needs to measure recovered accuracy after spike injection.
    pub fn with_scrub_threshold(&self, threshold: Option<f64>) -> Result<Self> {
        let mut out = self.clone();
        out.config.scrub_fd_threshold = threshold;
        out.config.validate()?;
        Ok(out)
    }

    /// The functional connectome of one scan.
    pub fn connectome(&self, subject: usize, task: Task, session: Session) -> Result<Connectome> {
        let ts = self.region_ts(subject, task, session)?;
        Connectome::from_region_ts(&ts).map_err(Into::into)
    }

    /// Builds the features × subjects group matrix for one condition and
    /// session, subjects in index order (parallel across subjects).
    pub fn group_matrix(&self, task: Task, session: Session) -> Result<GroupMatrix> {
        let n = self.config.n_subjects;
        let mut results: Vec<Option<Result<Vec<f64>>>> = (0..n).map(|_| None).collect();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(8)
            .min(n);
        let chunk = n.div_ceil(workers);
        std::thread::scope(|scope| {
            for (w, slot) in results.chunks_mut(chunk).enumerate() {
                let start = w * chunk;
                scope.spawn(move || {
                    for (off, out) in slot.iter_mut().enumerate() {
                        let s = start + off;
                        *out = Some(self.connectome(s, task, session).map(|c| c.vectorize()));
                    }
                });
            }
        });
        let n_features = self.config.n_regions * (self.config.n_regions - 1) / 2;
        let mut data = Matrix::zeros(n_features, n);
        let mut ids = Vec::with_capacity(n);
        for (s, slot) in results.into_iter().enumerate() {
            let v = slot.expect("worker filled every slot")?;
            data.set_col(s, &v)?;
            ids.push(format!(
                "{}/{}/{}",
                self.subject_id(s),
                task.name(),
                session.encoding()
            ));
        }
        GroupMatrix::from_matrix(data, ids, self.config.n_regions).map_err(Into::into)
    }

    /// Ground-truth task performance (percent correct) for subjects on
    /// tasks with metrics — a task-specific mixture of the leading latent
    /// connectome modes plus small idiosyncratic noise, so connectome
    /// features genuinely carry it (§3.3.3's premise).
    pub fn performance(&self, subject: usize, task: Task) -> Result<f64> {
        if subject >= self.config.n_subjects {
            return Err(DatasetError::SubjectOutOfRange {
                subject,
                n_subjects: self.config.n_subjects,
            });
        }
        if !task.has_performance_metric() {
            return Err(DatasetError::InvalidConfig {
                name: "task",
                reason: "no performance metric for this condition",
            });
        }
        Ok(self.performance[task.index()][subject])
    }

    /// All subjects' performance for one task.
    pub fn performance_vector(&self, task: Task) -> Result<Vec<f64>> {
        (0..self.config.n_subjects)
            .map(|s| self.performance(s, task))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_linalg::stats::pearson;

    fn small() -> HcpCohort {
        HcpCohort::generate(HcpCohortConfig::small(8, 42)).unwrap()
    }

    #[test]
    fn config_validation() {
        let mut c = HcpCohortConfig::small(0, 1);
        assert!(HcpCohort::generate(c.clone()).is_err());
        c.n_subjects = 2;
        c.n_regions = 2;
        assert!(HcpCohort::generate(c.clone()).is_err());
        c.n_regions = 20;
        c.n_sig_regions = 30;
        assert!(HcpCohort::generate(c).is_err());
    }

    #[test]
    fn region_ts_shape_and_determinism() {
        let cohort = small();
        let a = cohort.region_ts(0, Task::Rest, Session::One).unwrap();
        let b = cohort.region_ts(0, Task::Rest, Session::One).unwrap();
        assert_eq!(a.shape(), (60, 400));
        assert_eq!(a, b);
        let c = cohort.region_ts(0, Task::Rest, Session::Two).unwrap();
        assert_ne!(a, c);
        assert!(cohort.region_ts(99, Task::Rest, Session::One).is_err());
    }

    #[test]
    fn intra_subject_beats_inter_subject_similarity() {
        // The core fingerprinting phenomenon (Figure 1) at rest.
        let cohort = small();
        let c0a = cohort.connectome(0, Task::Rest, Session::One).unwrap();
        let c0b = cohort.connectome(0, Task::Rest, Session::Two).unwrap();
        let c1b = cohort.connectome(1, Task::Rest, Session::Two).unwrap();
        let self_sim = pearson(&c0a.vectorize(), &c0b.vectorize()).unwrap();
        let cross_sim = pearson(&c0a.vectorize(), &c1b.vectorize()).unwrap();
        assert!(
            self_sim > cross_sim,
            "self {self_sim:.3} vs cross {cross_sim:.3}"
        );
    }

    #[test]
    fn signature_concentrates_on_signature_regions() {
        // Between-subject variance of edges inside the signature support
        // must exceed that of edges outside it.
        let cohort = small();
        let g = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let sig: std::collections::HashSet<usize> =
            cohort.signature_regions().iter().copied().collect();
        let idx = neurodeanon_connectome::EdgeIndex::new(60).unwrap();
        let mut var_in = 0.0;
        let mut n_in = 0.0;
        let mut var_out = 0.0;
        let mut n_out = 0.0;
        for (f, (i, j)) in idx.iter().enumerate() {
            let row = g.as_matrix().row(f);
            let mean: f64 = row.iter().sum::<f64>() / row.len() as f64;
            let var: f64 =
                row.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / row.len() as f64;
            if sig.contains(&i) && sig.contains(&j) {
                var_in += var;
                n_in += 1.0;
            } else if !sig.contains(&i) && !sig.contains(&j) {
                var_out += var;
                n_out += 1.0;
            }
        }
        let ratio = (var_in / n_in) / (var_out / n_out);
        assert!(ratio > 2.0, "variance ratio {ratio}");
    }

    #[test]
    fn group_matrix_layout() {
        let cohort = small();
        let g = cohort.group_matrix(Task::Language, Session::One).unwrap();
        assert_eq!(g.n_features(), 60 * 59 / 2);
        assert_eq!(g.n_subjects(), 8);
        assert!(g.subject_ids()[0].contains("LANGUAGE"));
        assert!(g.subject_ids()[0].contains("LR"));
        // Columns match individually computed connectomes.
        let c3 = cohort.connectome(3, Task::Language, Session::One).unwrap();
        assert_eq!(g.subject_features(3), c3.vectorize());
    }

    #[test]
    fn performance_metrics_available_and_bounded() {
        let cohort = small();
        for task in [
            Task::Language,
            Task::Emotion,
            Task::Relational,
            Task::WorkingMemory,
        ] {
            let y = cohort.performance_vector(task).unwrap();
            assert_eq!(y.len(), 8);
            assert!(y.iter().all(|&v| (0.0..=100.0).contains(&v)));
            // Not constant across subjects.
            let spread = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - y.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(spread > 0.5, "{task}: spread {spread}");
        }
        assert!(cohort.performance(0, Task::Motor).is_err());
        assert!(cohort.performance(100, Task::Language).is_err());
    }

    #[test]
    fn performance_is_deterministic() {
        let a = small().performance(2, Task::Language).unwrap();
        let b = small().performance(2, Task::Language).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scrub_threshold_default_is_bit_identical_legacy() {
        let cohort = small();
        let with = cohort.with_scrub_threshold(Some(4.0)).unwrap();
        let none = with.with_scrub_threshold(None).unwrap();
        let a = cohort.region_ts(1, Task::Rest, Session::One).unwrap();
        let b = none.region_ts(1, Task::Rest, Session::One).unwrap();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Raw synthesis ignores scrubbing entirely.
        let raw = with.region_ts_raw(1, Task::Rest, Session::One).unwrap();
        assert_eq!(raw.as_slice(), a.as_slice());
        assert!(cohort.with_scrub_threshold(Some(0.5)).is_err());
        assert!(cohort.with_scrub_threshold(Some(f64::NAN)).is_err());
    }

    #[test]
    fn different_seeds_give_different_cohorts() {
        let a = HcpCohort::generate(HcpCohortConfig::small(4, 1)).unwrap();
        let b = HcpCohort::generate(HcpCohortConfig::small(4, 2)).unwrap();
        let ta = a.region_ts(0, Task::Rest, Session::One).unwrap();
        let tb = b.region_ts(0, Task::Rest, Session::One).unwrap();
        assert_ne!(ta, tb);
    }
}
