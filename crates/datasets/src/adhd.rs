//! The ADHD-200-like cohort: resting-state scans of children with ADHD
//! (three subtypes) plus typically-developing controls, on an AAL2-like
//! 116-region atlas (§3.3.4 of the paper).

use crate::error::DatasetError;
use crate::model::{
    dense_loadings, signature_regions, supported_loadings, synthesize_ts, Component, Session,
};
use crate::Result;
use neurodeanon_connectome::{Connectome, GroupMatrix};
use neurodeanon_linalg::{Matrix, Rng64};

/// Diagnostic group of one subject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdhdGroup {
    /// Typically developing control.
    Control,
    /// ADHD subtype (1 = combined, 2 = hyperactive-impulsive,
    /// 3 = inattentive, following the ADHD-200 coding).
    Subtype(u8),
}

impl AdhdGroup {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            AdhdGroup::Control => "control".to_string(),
            AdhdGroup::Subtype(k) => format!("adhd-{k}"),
        }
    }
}

/// Cohort configuration. The real ADHD-200 release has 362 cases and 585
/// controls; the default here is scaled to laptop runtimes while keeping
/// the case/control imbalance.
#[derive(Debug, Clone)]
pub struct AdhdCohortConfig {
    /// Controls in the cohort.
    pub n_controls: usize,
    /// Cases per subtype (subtypes 1..=3).
    pub n_cases_per_subtype: usize,
    /// Atlas regions (AAL2-like: 116 ⇒ 6,670 pair features).
    pub n_regions: usize,
    /// Time points per scan.
    pub n_timepoints: usize,
    /// Factors in the population component.
    pub n_pop_factors: usize,
    /// Factors in each subtype's pathology component.
    pub n_subtype_factors: usize,
    /// Factors per subject signature.
    pub n_sig_factors: usize,
    /// Signature-region count.
    pub n_sig_regions: usize,
    /// Signature expression (children at rest — strong, slightly under the
    /// HCP adult resting value).
    pub signature_expression: f64,
    /// Pathology-component amplitude for cases.
    pub subtype_strength: f64,
    /// Signature instability: session-fresh perturbation on the signature
    /// regions, relative to the signature expression (see the HCP cohort).
    pub signature_instability: f64,
    /// Measurement noise (pediatric scans are noisier than HCP).
    pub noise_std: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for AdhdCohortConfig {
    fn default() -> Self {
        AdhdCohortConfig {
            n_controls: 60,
            n_cases_per_subtype: 25,
            n_regions: 116,
            n_timepoints: 420,
            n_pop_factors: 24,
            n_subtype_factors: 8,
            n_sig_factors: 4,
            n_sig_regions: 28,
            signature_expression: 0.95,
            subtype_strength: 0.45,
            signature_instability: 0.35,
            noise_std: 1.0,
            seed: 0xadbd_0200,
        }
    }
}

impl AdhdCohortConfig {
    /// Reduced configuration for tests.
    pub fn small(n_controls: usize, n_cases_per_subtype: usize, seed: u64) -> Self {
        AdhdCohortConfig {
            n_controls,
            n_cases_per_subtype,
            n_regions: 40,
            n_timepoints: 360,
            n_pop_factors: 10,
            n_subtype_factors: 4,
            n_sig_factors: 3,
            n_sig_regions: 10,
            seed,
            ..Default::default()
        }
    }

    fn validate(&self) -> Result<()> {
        if self.n_controls + self.n_cases_per_subtype == 0 {
            return Err(DatasetError::InvalidConfig {
                name: "cohort size",
                reason: "need at least one subject",
            });
        }
        if self.n_regions < 4 {
            return Err(DatasetError::InvalidConfig {
                name: "n_regions",
                reason: "need at least 4 regions",
            });
        }
        if self.n_sig_regions == 0 || self.n_sig_regions > self.n_regions {
            return Err(DatasetError::InvalidConfig {
                name: "n_sig_regions",
                reason: "signature regions must be in 1..=n_regions",
            });
        }
        if self.n_timepoints < 16 {
            return Err(DatasetError::InvalidConfig {
                name: "n_timepoints",
                reason: "need at least 16 time points",
            });
        }
        Ok(())
    }
}

/// A generated ADHD-200-like cohort (resting-state only, two sessions).
#[derive(Debug, Clone)]
pub struct AdhdCohort {
    config: AdhdCohortConfig,
    groups: Vec<AdhdGroup>,
    pop_loadings: Matrix,
    subtype_loadings: [Matrix; 3],
    session_loadings: [Matrix; 2],
    sig_regions: Vec<usize>,
    subject_loadings: Vec<Matrix>,
}

impl AdhdCohort {
    /// Generates the cohort: controls first, then subtype 1, 2, 3 cases.
    pub fn generate(config: AdhdCohortConfig) -> Result<Self> {
        config.validate()?;
        let mut master = Rng64::new(config.seed);
        let mut rng_pop = master.fork(1);
        let pop_loadings = dense_loadings(config.n_regions, config.n_pop_factors, &mut rng_pop);
        let subtype_loadings = [
            dense_loadings(
                config.n_regions,
                config.n_subtype_factors,
                &mut master.fork(11),
            ),
            dense_loadings(
                config.n_regions,
                config.n_subtype_factors,
                &mut master.fork(12),
            ),
            dense_loadings(
                config.n_regions,
                config.n_subtype_factors,
                &mut master.fork(13),
            ),
        ];
        let session_loadings = [
            dense_loadings(config.n_regions, 4, &mut master.fork(21)),
            dense_loadings(config.n_regions, 4, &mut master.fork(22)),
        ];
        let sig_regions = signature_regions(config.n_regions, config.n_sig_regions);

        let mut groups = Vec::new();
        for _ in 0..config.n_controls {
            groups.push(AdhdGroup::Control);
        }
        for subtype in 1..=3u8 {
            for _ in 0..config.n_cases_per_subtype {
                groups.push(AdhdGroup::Subtype(subtype));
            }
        }
        let mut subject_loadings = Vec::with_capacity(groups.len());
        for s in 0..groups.len() {
            let mut rng_sub = master.fork(1000 + s as u64);
            subject_loadings.push(supported_loadings(
                config.n_regions,
                &sig_regions,
                config.n_sig_factors,
                &mut rng_sub,
            ));
        }
        Ok(AdhdCohort {
            config,
            groups,
            pop_loadings,
            subtype_loadings,
            session_loadings,
            sig_regions,
            subject_loadings,
        })
    }

    /// Cohort configuration.
    pub fn config(&self) -> &AdhdCohortConfig {
        &self.config
    }

    /// Total subject count (controls + all cases).
    pub fn n_subjects(&self) -> usize {
        self.groups.len()
    }

    /// Diagnostic group of each subject, cohort order.
    pub fn groups(&self) -> &[AdhdGroup] {
        &self.groups
    }

    /// Indices of subjects in `group`.
    pub fn subjects_in(&self, group: AdhdGroup) -> Vec<usize> {
        self.groups
            .iter()
            .enumerate()
            .filter_map(|(i, &g)| (g == group).then_some(i))
            .collect()
    }

    /// The signature-region indices.
    pub fn signature_regions(&self) -> &[usize] {
        &self.sig_regions
    }

    /// Synthesizes the resting region × time series for one scan session.
    pub fn region_ts(&self, subject: usize, session: Session) -> Result<Matrix> {
        if subject >= self.groups.len() {
            return Err(DatasetError::SubjectOutOfRange {
                subject,
                n_subjects: self.groups.len(),
            });
        }
        let mut rng = Rng64::new(
            self.config
                .seed
                .wrapping_mul(0xD6E8_FEB8_6659_FD93)
                .wrapping_add((subject as u64) << 16 | session.index()),
        );
        let instab_loadings = supported_loadings(
            self.config.n_regions,
            &self.sig_regions,
            self.config.n_sig_factors,
            &mut rng,
        );
        let zero = Matrix::zeros(self.config.n_regions, 1);
        let (path_loadings, path_scale) = match self.groups[subject] {
            AdhdGroup::Control => (&zero, 0.0),
            AdhdGroup::Subtype(k) => (
                &self.subtype_loadings[(k - 1) as usize],
                self.config.subtype_strength,
            ),
        };
        let components = [
            Component {
                loadings: &self.pop_loadings,
                scale: 1.0,
            },
            Component {
                loadings: path_loadings,
                scale: path_scale,
            },
            Component {
                loadings: &self.subject_loadings[subject],
                scale: self.config.signature_expression,
            },
            Component {
                loadings: &instab_loadings,
                scale: self.config.signature_expression * self.config.signature_instability,
            },
            Component {
                loadings: &self.session_loadings[session.index() as usize],
                scale: 0.15,
            },
        ];
        synthesize_ts(
            self.config.n_regions,
            self.config.n_timepoints,
            &components,
            self.config.noise_std,
            &mut rng,
        )
    }

    /// One subject-session connectome.
    pub fn connectome(&self, subject: usize, session: Session) -> Result<Connectome> {
        let ts = self.region_ts(subject, session)?;
        Connectome::from_region_ts(&ts).map_err(Into::into)
    }

    /// Group matrix over the given subjects (e.g. one subtype, or everyone)
    /// for one session.
    pub fn group_matrix_for(&self, subjects: &[usize], session: Session) -> Result<GroupMatrix> {
        if subjects.is_empty() {
            return Err(DatasetError::InvalidConfig {
                name: "subjects",
                reason: "need at least one subject",
            });
        }
        let n_features = self.config.n_regions * (self.config.n_regions - 1) / 2;
        let mut data = Matrix::zeros(n_features, subjects.len());
        let mut ids = Vec::with_capacity(subjects.len());
        let mut results: Vec<Option<Result<Vec<f64>>>> = subjects.iter().map(|_| None).collect();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(8)
            .min(subjects.len());
        let chunk = subjects.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (w, slot) in results.chunks_mut(chunk).enumerate() {
                let start = w * chunk;
                let subjects = &subjects;
                scope.spawn(move || {
                    for (off, out) in slot.iter_mut().enumerate() {
                        let s = subjects[start + off];
                        *out = Some(self.connectome(s, session).map(|c| c.vectorize()));
                    }
                });
            }
        });
        for (col, (slot, &s)) in results.into_iter().zip(subjects).enumerate() {
            let v = slot.expect("worker filled every slot")?;
            data.set_col(col, &v)?;
            ids.push(format!(
                "sub{s:04}/{}/{}",
                self.groups[s].label(),
                session.encoding()
            ));
        }
        GroupMatrix::from_matrix(data, ids, self.config.n_regions).map_err(Into::into)
    }

    /// Group matrix over the full cohort for one session.
    pub fn group_matrix(&self, session: Session) -> Result<GroupMatrix> {
        let all: Vec<usize> = (0..self.n_subjects()).collect();
        self.group_matrix_for(&all, session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_linalg::stats::pearson;

    fn small() -> AdhdCohort {
        AdhdCohort::generate(AdhdCohortConfig::small(4, 2, 7)).unwrap()
    }

    #[test]
    fn cohort_composition() {
        let c = small();
        assert_eq!(c.n_subjects(), 4 + 3 * 2);
        assert_eq!(c.subjects_in(AdhdGroup::Control).len(), 4);
        for k in 1..=3 {
            assert_eq!(c.subjects_in(AdhdGroup::Subtype(k)).len(), 2);
        }
    }

    #[test]
    fn config_validation() {
        assert!(AdhdCohort::generate(AdhdCohortConfig::small(0, 0, 1)).is_err());
        let mut cfg = AdhdCohortConfig::small(2, 1, 1);
        cfg.n_sig_regions = 100;
        assert!(AdhdCohort::generate(cfg).is_err());
    }

    #[test]
    fn intra_subject_similarity_dominates() {
        let c = small();
        let a1 = c.connectome(0, Session::One).unwrap().vectorize();
        let a2 = c.connectome(0, Session::Two).unwrap().vectorize();
        let b2 = c.connectome(5, Session::Two).unwrap().vectorize();
        let self_sim = pearson(&a1, &a2).unwrap();
        let cross_sim = pearson(&a1, &b2).unwrap();
        assert!(self_sim > cross_sim, "{self_sim} vs {cross_sim}");
    }

    #[test]
    fn cases_share_subtype_structure() {
        // Two subjects of the same subtype are more similar than a case and
        // a control (the pathology component is shared within subtype).
        let c = AdhdCohort::generate(AdhdCohortConfig::small(4, 3, 9)).unwrap();
        let s1 = c.subjects_in(AdhdGroup::Subtype(1));
        let controls = c.subjects_in(AdhdGroup::Control);
        let a = c.connectome(s1[0], Session::One).unwrap().vectorize();
        let b = c.connectome(s1[1], Session::One).unwrap().vectorize();
        let ctrl = c.connectome(controls[0], Session::One).unwrap().vectorize();
        let within = pearson(&a, &b).unwrap();
        let across = pearson(&a, &ctrl).unwrap();
        assert!(within > across, "within {within} vs across {across}");
    }

    #[test]
    fn group_matrix_shapes_and_labels() {
        let c = small();
        let g = c.group_matrix(Session::One).unwrap();
        assert_eq!(g.n_features(), 40 * 39 / 2);
        assert_eq!(g.n_subjects(), 10);
        assert!(g.subject_ids()[0].contains("control"));
        assert!(g.subject_ids()[9].contains("adhd-3"));
        let sub = c.group_matrix_for(&c.subjects_in(AdhdGroup::Subtype(1)), Session::Two);
        assert_eq!(sub.unwrap().n_subjects(), 2);
        assert!(c.group_matrix_for(&[], Session::One).is_err());
    }

    #[test]
    fn default_feature_count_matches_paper() {
        let cfg = AdhdCohortConfig::default();
        assert_eq!(cfg.n_regions * (cfg.n_regions - 1) / 2, 6_670);
    }

    #[test]
    fn deterministic_scans() {
        let a = small().region_ts(3, Session::One).unwrap();
        let b = small().region_ts(3, Session::One).unwrap();
        assert_eq!(a, b);
    }
}
