//! Shared latent-factor machinery for the synthetic cohorts.
//!
//! Every cohort draws region time series as sums of factor components
//! `scale · L ζ(t)` plus white noise; the latent covariance is then
//! `Σ scale² L Lᵀ + σ² I`, and Pearson connectomes estimated from finitely
//! many time points concentrate around it. Loadings are deterministic
//! functions of (cohort seed, component id), so any subject/session/task
//! series can be regenerated on demand without storing the cohort.

use crate::Result;
use neurodeanon_linalg::{Matrix, Rng64};

/// Scan session. The paper's two resting sessions use opposite phase
/// encodings (L-R and R-L); `Session` carries that distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Session {
    /// First session (L-R encoding in the HCP protocol).
    One,
    /// Second session (R-L encoding).
    Two,
}

impl Session {
    /// Both sessions.
    pub const BOTH: [Session; 2] = [Session::One, Session::Two];

    /// The HCP encoding label.
    pub fn encoding(&self) -> &'static str {
        match self {
            Session::One => "LR",
            Session::Two => "RL",
        }
    }

    /// Stable small integer for seed derivation.
    pub fn index(&self) -> u64 {
        match self {
            Session::One => 0,
            Session::Two => 1,
        }
    }
}

/// A weighted factor component: `scale · loadings · ζ(t)`.
#[derive(Debug, Clone)]
pub struct Component<'a> {
    /// Region × factors loading matrix.
    pub loadings: &'a Matrix,
    /// Amplitude multiplier.
    pub scale: f64,
}

/// Draws a dense `n_regions × n_factors` loading matrix with entries
/// `N(0, 1/n_factors)` so the component covariance `L Lᵀ` has unit-order
/// diagonal regardless of the factor count.
pub fn dense_loadings(n_regions: usize, n_factors: usize, rng: &mut Rng64) -> Matrix {
    let sd = (1.0 / n_factors.max(1) as f64).sqrt();
    Matrix::from_fn(n_regions, n_factors, |_, _| rng.gaussian() * sd)
}

/// Draws loadings supported only on `support` rows (all other rows zero) —
/// the subject-signature component concentrated on signature regions.
pub fn supported_loadings(
    n_regions: usize,
    support: &[usize],
    n_factors: usize,
    rng: &mut Rng64,
) -> Matrix {
    let sd = (1.0 / n_factors.max(1) as f64).sqrt();
    let member: std::collections::HashSet<usize> = support.iter().copied().collect();
    Matrix::from_fn(n_regions, n_factors, |r, _| {
        if member.contains(&r) {
            rng.gaussian() * sd
        } else {
            0.0
        }
    })
}

/// Temporal autocorrelation of the latent factor series: the AR(1)
/// coefficient applied to every factor before mixing. BOLD fluctuations are
/// band-limited (≈ 0.01–0.1 Hz); at the HCP repetition time an AR(1) with
/// φ ≈ 0.72 concentrates factor energy in exactly that band, so the
/// pipeline's band-pass stage removes thermal noise *without* removing
/// signal — matching real acquisition physics.
pub const FACTOR_AR: f64 = 0.72;

/// Synthesizes a `n_regions × t` time-series matrix from components plus
/// i.i.d. white noise of standard deviation `noise_std`.
///
/// Factor series are AR(1)-smoothed ([`FACTOR_AR`]) and re-normalized to
/// unit marginal variance, so component scales keep their covariance
/// interpretation; the additive noise stays white (thermal).
pub fn synthesize_ts(
    n_regions: usize,
    t: usize,
    components: &[Component<'_>],
    noise_std: f64,
    rng: &mut Rng64,
) -> Result<Matrix> {
    let mut out = Matrix::zeros(n_regions, t);
    // Innovation scale that keeps the AR(1) process at unit variance.
    let innov = (1.0 - FACTOR_AR * FACTOR_AR).sqrt();
    for comp in components {
        if comp.scale == 0.0 {
            continue;
        }
        let q = comp.loadings.cols();
        // Factor series ζ: q × t band-limited (AR(1)) unit-variance noise.
        let mut factors = Matrix::zeros(q, t);
        for f in 0..q {
            let row = factors.row_mut(f);
            let mut prev = rng.gaussian(); // stationary start
            row[0] = prev;
            for v in row.iter_mut().skip(1) {
                prev = FACTOR_AR * prev + innov * rng.gaussian();
                *v = prev;
            }
        }
        let mut contrib = comp.loadings.matmul(&factors)?;
        contrib.scale_mut(comp.scale);
        out = out.add(&contrib)?;
    }
    if noise_std > 0.0 {
        for v in out.as_mut_slice() {
            *v += noise_std * rng.gaussian();
        }
    }
    Ok(out)
}

/// Picks `count` regions from the complement of `exclude`, spread evenly —
/// used for the task-execution support, disjoint from signature regions so
/// execution variability corrupts a different block of connectome features
/// than the one carrying identity.
pub fn complement_regions(n_regions: usize, exclude: &[usize], count: usize) -> Vec<usize> {
    let excluded: std::collections::HashSet<usize> = exclude.iter().copied().collect();
    let available: Vec<usize> = (0..n_regions).filter(|r| !excluded.contains(r)).collect();
    let count = count.min(available.len());
    if count == 0 {
        return Vec::new();
    }
    // Even stride over the available regions.
    (0..count)
        .map(|k| available[k * available.len() / count])
        .collect()
}

/// Picks `count` signature regions deterministically from `n_regions`
/// (evenly strided with a golden-ratio offset so they spread across the
/// brain, mimicking the distributed parieto-frontal signature sites).
pub fn signature_regions(n_regions: usize, count: usize) -> Vec<usize> {
    let count = count.min(n_regions);
    let phi = 0.618_033_988_749_894_9_f64;
    let mut picked = std::collections::BTreeSet::new();
    let mut pos = 0.0;
    while picked.len() < count {
        pos = (pos + phi) % 1.0;
        let mut idx = (pos * n_regions as f64) as usize % n_regions;
        while picked.contains(&idx) {
            idx = (idx + 1) % n_regions;
        }
        picked.insert(idx);
    }
    picked.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_linalg::stats::correlation_matrix;

    #[test]
    fn session_labels() {
        assert_eq!(Session::One.encoding(), "LR");
        assert_eq!(Session::Two.encoding(), "RL");
        assert_ne!(Session::One.index(), Session::Two.index());
    }

    #[test]
    fn dense_loadings_unit_diagonal_covariance() {
        let mut rng = Rng64::new(5);
        let l = dense_loadings(50, 200, &mut rng);
        let cov = l.matmul(&l.transpose()).unwrap();
        let mean_diag: f64 = (0..50).map(|i| cov[(i, i)]).sum::<f64>() / 50.0;
        assert!((mean_diag - 1.0).abs() < 0.15, "mean diag {mean_diag}");
    }

    #[test]
    fn supported_loadings_zero_outside_support() {
        let mut rng = Rng64::new(6);
        let support = vec![2, 5, 7];
        let l = supported_loadings(10, &support, 4, &mut rng);
        for r in 0..10 {
            let zero = l.row(r).iter().all(|&x| x == 0.0);
            assert_eq!(zero, !support.contains(&r), "row {r}");
        }
    }

    #[test]
    fn synthesize_ts_shapes_and_determinism() {
        let mut rng = Rng64::new(7);
        let l = dense_loadings(8, 4, &mut rng);
        let comps = [Component {
            loadings: &l,
            scale: 1.0,
        }];
        let a = synthesize_ts(8, 30, &comps, 0.1, &mut Rng64::new(9)).unwrap();
        let b = synthesize_ts(8, 30, &comps, 0.1, &mut Rng64::new(9)).unwrap();
        assert_eq!(a.shape(), (8, 30));
        assert_eq!(a, b);
    }

    #[test]
    fn correlation_tracks_latent_covariance() {
        // Two regions loading the same single factor must correlate highly;
        // a third independent region must not.
        let mut l = Matrix::zeros(3, 2);
        l[(0, 0)] = 1.0;
        l[(1, 0)] = 1.0;
        l[(2, 1)] = 1.0;
        let comps = [Component {
            loadings: &l,
            scale: 1.0,
        }];
        let ts = synthesize_ts(3, 2000, &comps, 0.1, &mut Rng64::new(11)).unwrap();
        let c = correlation_matrix(&ts).unwrap();
        assert!(c[(0, 1)] > 0.9, "coupled pair {}", c[(0, 1)]);
        assert!(c[(0, 2)].abs() < 0.15, "independent pair {}", c[(0, 2)]);
    }

    #[test]
    fn zero_scale_component_is_skipped() {
        let l = Matrix::filled(4, 2, 1.0);
        let comps = [Component {
            loadings: &l,
            scale: 0.0,
        }];
        let ts = synthesize_ts(4, 10, &comps, 0.0, &mut Rng64::new(1)).unwrap();
        assert!(ts.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn signature_regions_distinct_sorted_spread() {
        let s = signature_regions(360, 60);
        assert_eq!(s.len(), 60);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(*s.last().unwrap() < 360);
        // Spread: regions appear in every third of the brain.
        assert!(s.iter().any(|&r| r < 120));
        assert!(s.iter().any(|&r| (120..240).contains(&r)));
        assert!(s.iter().any(|&r| r >= 240));
    }

    #[test]
    fn signature_regions_caps_at_n() {
        assert_eq!(signature_regions(5, 10).len(), 5);
    }
}
