//! Service-plane fault injection: the chaos layer of the match server.
//!
//! [`crate::corruption`] injects *data* faults — NaN cells, dropped
//! regions, truncated scans — into matrices before an attack runs.
//! A long-lived server faces a second fault surface: *operational* faults
//! that arrive one query at a time. This module injects those, seeded and
//! rate-parameterized, so the serve layer's isolation contract ("exactly
//! the faulted queries fail, with typed errors; everything else is
//! bit-identical to a fault-free run") can be asserted by property tests
//! and exercised at benchmark scale.
//!
//! Fault classes ([`ServiceFaultKind`]):
//!
//! * `TruncatePayload` — the query arrives with the wrong number of
//!   features, as if the producer's pipeline changed its atlas (or the
//!   gallery shape changed mid-stream). Surfaces as a typed
//!   wrong-dimension error at validation, never as a slice panic.
//! * `NanPayload` — scattered non-finite cells, the service-plane twin of
//!   [`crate::corruption::CorruptionKind::NanCells`]; handled per the
//!   configured `DegradedInput` policy.
//! * `WorkerPanic` — the query carries a poison marker that makes the
//!   worker thread panic mid-batch, exercising `catch_unwind` containment
//!   and supervisor respawn.
//! * `StallProducer` — the producer sleeps before submitting, exercising
//!   queue timeouts and deadline shedding. Latency-only: a stalled query
//!   that still arrives in time must produce a bit-identical result.
//!
//! Determinism: whether query `i` is faulted, and with which class, is a
//! pure function of `(seed, i)` via a forked [`Rng64`] stream — independent
//! of arrival order, batch packing, worker count, and thread count. Two
//! runs over the same query stream inject exactly the same faults.

use crate::error::DatasetError;
use crate::Result;
use neurodeanon_linalg::Rng64;

/// Fraction of payload cells poisoned by `NanPayload` (at least one).
const NAN_CELL_FRACTION: f64 = 0.1;

/// Milliseconds a `StallProducer` fault asks the producer to sleep.
const STALL_MS: u64 = 2;

/// Every operational fault class the service chaos layer injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceFaultKind {
    /// Malformed payload: wrong feature count (truncated to roughly half).
    TruncatePayload,
    /// Scattered NaN cells in the payload.
    NanPayload,
    /// Poison marker that panics the worker processing the query.
    WorkerPanic,
    /// Producer-side stall before submission (latency fault, not a data
    /// fault — the query itself stays clean).
    StallProducer,
}

impl ServiceFaultKind {
    /// Every kind, in the injection-choice order of [`ChaosSpec::fault_for`].
    pub const ALL: [ServiceFaultKind; 4] = [
        ServiceFaultKind::TruncatePayload,
        ServiceFaultKind::NanPayload,
        ServiceFaultKind::WorkerPanic,
        ServiceFaultKind::StallProducer,
    ];

    /// Stable lowercase name (JSONL records, CLI output).
    pub fn name(self) -> &'static str {
        match self {
            ServiceFaultKind::TruncatePayload => "truncate_payload",
            ServiceFaultKind::NanPayload => "nan_payload",
            ServiceFaultKind::WorkerPanic => "worker_panic",
            ServiceFaultKind::StallProducer => "stall_producer",
        }
    }

    /// Whether this fault mutates the query payload itself (as opposed to
    /// the timing or the worker processing it).
    pub fn is_payload_fault(self) -> bool {
        matches!(
            self,
            ServiceFaultKind::TruncatePayload | ServiceFaultKind::NanPayload
        )
    }
}

impl std::fmt::Display for ServiceFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A seeded service-plane chaos schedule: which queries of a stream get
/// faulted, and how.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosSpec {
    /// Master seed; each query index forks its own decision stream.
    pub seed: u64,
    /// Fraction of queries faulted, in `[0, 1]`. `0.0` injects nothing
    /// (the stream is bit-identical to an un-chaosed run).
    pub rate: f64,
}

impl ChaosSpec {
    /// Validates the rate domain.
    pub fn validate(&self) -> Result<()> {
        if !self.rate.is_finite() || !(0.0..=1.0).contains(&self.rate) {
            return Err(DatasetError::InvalidConfig {
                name: "rate",
                reason: "fault rate must be a finite fraction in [0, 1]",
            });
        }
        Ok(())
    }

    /// The fault assigned to query `index`, or `None` for a clean query.
    ///
    /// Pure in `(self.seed, index)`: the decision stream is
    /// `Rng64::new(seed).fork(index)`, so assignments are independent of
    /// the order in which queries are generated, submitted, or processed.
    pub fn fault_for(&self, index: u64) -> Option<ServiceFaultKind> {
        if self.rate <= 0.0 {
            return None;
        }
        let mut rng = Rng64::new(self.seed).fork(index);
        if rng.uniform() >= self.rate {
            return None;
        }
        let k = rng.below(ServiceFaultKind::ALL.len());
        Some(ServiceFaultKind::ALL[k])
    }

    /// Applies query `index`'s fault to its payload, returning the kind
    /// injected (also for non-payload faults, which leave `values` alone —
    /// the caller forwards `WorkerPanic` as the query's poison marker and
    /// honors `StallProducer` by sleeping [`stall_duration`] first).
    pub fn apply(&self, index: u64, values: &mut Vec<f64>) -> Option<ServiceFaultKind> {
        let kind = self.fault_for(index)?;
        match kind {
            ServiceFaultKind::TruncatePayload => {
                values.truncate(values.len() / 2);
            }
            ServiceFaultKind::NanPayload => {
                if !values.is_empty() {
                    let n = ((values.len() as f64 * NAN_CELL_FRACTION) as usize).max(1);
                    // A dedicated sub-stream so cell choice is independent
                    // of the class-choice draws above.
                    let mut cells = Rng64::new(self.seed ^ 0x9e3779b97f4a7c15).fork(index);
                    for _ in 0..n {
                        let at = cells.below(values.len());
                        values[at] = f64::NAN;
                    }
                }
            }
            ServiceFaultKind::WorkerPanic | ServiceFaultKind::StallProducer => {}
        }
        Some(kind)
    }
}

/// How long a [`ServiceFaultKind::StallProducer`] fault stalls the
/// producer. Small and fixed: long enough to perturb batching, short
/// enough that chaos benches stay fast.
pub fn stall_duration() -> std::time::Duration {
    std::time::Duration::from_millis(STALL_MS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_assignment_is_deterministic_and_order_free() {
        let spec = ChaosSpec { seed: 7, rate: 0.3 };
        let forward: Vec<_> = (0..200).map(|i| spec.fault_for(i)).collect();
        let backward: Vec<_> = (0..200).rev().map(|i| spec.fault_for(i)).collect();
        for (i, b) in backward.iter().rev().enumerate() {
            assert_eq!(forward[i], *b);
        }
        // Roughly the configured rate, and every class appears at scale.
        let spec = ChaosSpec { seed: 7, rate: 0.5 };
        let hits: Vec<_> = (0..2000).filter_map(|i| spec.fault_for(i)).collect();
        let frac = hits.len() as f64 / 2000.0;
        assert!((0.4..0.6).contains(&frac), "rate off: {frac}");
        for kind in ServiceFaultKind::ALL {
            assert!(hits.contains(&kind), "missing {kind}");
        }
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let spec = ChaosSpec { seed: 1, rate: 0.0 };
        assert!((0..500).all(|i| spec.fault_for(i).is_none()));
        let mut v = vec![1.0, 2.0];
        assert_eq!(spec.apply(3, &mut v), None);
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    fn payload_faults_mutate_payloads_only() {
        let spec = ChaosSpec {
            seed: 42,
            rate: 1.0,
        };
        let mut seen_truncate = false;
        let mut seen_nan = false;
        for i in 0..200u64 {
            let mut v: Vec<f64> = (0..50).map(|x| x as f64).collect();
            let kind = spec.apply(i, &mut v).expect("rate 1.0 always faults");
            assert_eq!(kind, spec.fault_for(i).unwrap());
            match kind {
                ServiceFaultKind::TruncatePayload => {
                    assert_eq!(v.len(), 25);
                    seen_truncate = true;
                }
                ServiceFaultKind::NanPayload => {
                    assert_eq!(v.len(), 50);
                    assert!(v.iter().any(|x| x.is_nan()));
                    seen_nan = true;
                }
                _ => {
                    assert_eq!(v.len(), 50);
                    assert!(v.iter().all(|x| x.is_finite()));
                }
            }
        }
        assert!(seen_truncate && seen_nan);
    }

    #[test]
    fn rate_domain_is_validated() {
        assert!(ChaosSpec { seed: 0, rate: 0.5 }.validate().is_ok());
        assert!(ChaosSpec {
            seed: 0,
            rate: -0.1
        }
        .validate()
        .is_err());
        assert!(ChaosSpec { seed: 0, rate: 1.5 }.validate().is_err());
        assert!(ChaosSpec {
            seed: 0,
            rate: f64::NAN
        }
        .validate()
        .is_err());
    }
}
