//! Dataset generation error type.

use std::fmt;

/// Errors from cohort generation.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// A configuration parameter was outside its valid domain.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        reason: &'static str,
    },
    /// A subject index exceeded the cohort size.
    SubjectOutOfRange {
        /// Requested subject.
        subject: usize,
        /// Cohort size.
        n_subjects: usize,
    },
    /// Error propagated from the linear-algebra layer.
    Linalg(neurodeanon_linalg::LinalgError),
    /// Error propagated from the connectome layer.
    Connectome(neurodeanon_connectome::ConnectomeError),
    /// Error propagated from the preprocessing layer (scrubbing).
    Preprocess(neurodeanon_preprocess::PreprocessError),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidConfig { name, reason } => {
                write!(f, "invalid config `{name}`: {reason}")
            }
            DatasetError::SubjectOutOfRange {
                subject,
                n_subjects,
            } => write!(f, "subject {subject} out of range (cohort of {n_subjects})"),
            DatasetError::Linalg(e) => write!(f, "linalg error: {e}"),
            DatasetError::Connectome(e) => write!(f, "connectome error: {e}"),
            DatasetError::Preprocess(e) => write!(f, "preprocess error: {e}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Linalg(e) => Some(e),
            DatasetError::Connectome(e) => Some(e),
            DatasetError::Preprocess(e) => Some(e),
            _ => None,
        }
    }
}

impl From<neurodeanon_linalg::LinalgError> for DatasetError {
    fn from(e: neurodeanon_linalg::LinalgError) -> Self {
        DatasetError::Linalg(e)
    }
}

impl From<neurodeanon_connectome::ConnectomeError> for DatasetError {
    fn from(e: neurodeanon_connectome::ConnectomeError) -> Self {
        DatasetError::Connectome(e)
    }
}

impl From<neurodeanon_preprocess::PreprocessError> for DatasetError {
    fn from(e: neurodeanon_preprocess::PreprocessError) -> Self {
        DatasetError::Preprocess(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DatasetError::SubjectOutOfRange {
            subject: 101,
            n_subjects: 100,
        };
        assert!(e.to_string().contains("101"));
        let e = DatasetError::InvalidConfig {
            name: "n_subjects",
            reason: "zero",
        };
        assert!(e.to_string().contains("n_subjects"));
    }
}
