//! Property tests for the synthetic fMRI layer.

use neurodeanon_fmri::artifacts::{add_drift, add_gain_bias, add_global_signal, add_thermal_noise};
use neurodeanon_fmri::noise::multi_site_noise;
use neurodeanon_fmri::signal::{block_design, convolve, hrf_kernel};
use neurodeanon_fmri::Volume4D;
use neurodeanon_linalg::{Matrix, Rng64};
use neurodeanon_testkit::gen::{f64_in, u64_in, usize_in, vec_exact};
use neurodeanon_testkit::{forall, tk_assert, tk_assert_eq, Config};

fn cfg() -> Config {
    Config::cases(40)
}

#[test]
fn volume_flat_index_bijection() {
    forall!(cfg(), (nx in usize_in(1..8), ny in usize_in(1..8), nz in usize_in(1..8)) => {
        let vol = Volume4D::zeros(nx, ny, nz, 2).unwrap();
        let mut seen = std::collections::HashSet::new();
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let idx = vol.voxel_index(x, y, z);
                    tk_assert!(idx < vol.n_voxels());
                    tk_assert!(seen.insert(idx), "duplicate index {}", idx);
                }
            }
        }
    });
}

#[test]
fn artifacts_preserve_shape_and_finiteness() {
    forall!(cfg(), (seed in u64_in(0..300)) => {
        let mut vol = Volume4D::zeros(5, 5, 5, 20).unwrap();
        let mut rng = Rng64::new(seed);
        for v in 0..vol.n_voxels() {
            for s in vol.voxel_ts_mut(v) {
                *s = rng.gaussian();
            }
        }
        add_gain_bias(&mut vol, 0.3).unwrap();
        add_drift(&mut vol, 1.0, &mut rng).unwrap();
        add_global_signal(&mut vol, 0.8, &mut rng).unwrap();
        add_thermal_noise(&mut vol, 0.2, &mut rng).unwrap();
        tk_assert_eq!(vol.dims(), (5, 5, 5));
        tk_assert_eq!(vol.time_points(), 20);
        tk_assert!(vol.as_matrix().is_finite());
    });
}

#[test]
fn multi_site_noise_preserves_shape_and_is_seeded() {
    forall!(cfg(), (frac in f64_in(0.0..2.0), seed in u64_in(0..300)) => {
        let base = Matrix::from_fn(4, 60, |r, c| ((r + 1) as f64 * c as f64 * 0.1).sin());
        let mut a = base.clone();
        let mut b = base.clone();
        multi_site_noise(&mut a, frac, &mut Rng64::new(seed)).unwrap();
        multi_site_noise(&mut b, frac, &mut Rng64::new(seed)).unwrap();
        tk_assert_eq!(a.as_slice(), b.as_slice());
        tk_assert!(a.is_finite());
    });
}

#[test]
fn block_design_period_and_range() {
    forall!(cfg(), (n in usize_in(2..200), block in usize_in(1..20)) => {
        let d = block_design(n, block).unwrap();
        tk_assert_eq!(d.len(), n);
        tk_assert!(d.iter().all(|&x| x == 0.0 || x == 1.0));
        // First block is all zeros.
        for &x in d.iter().take(block.min(n)) {
            tk_assert_eq!(x, 0.0);
        }
    });
}

#[test]
fn convolution_output_is_bounded() {
    forall!(cfg(), (signal in vec_exact(f64_in(0.0..1.0), 30)) => {
        let k = hrf_kernel(0.72, 24).unwrap();
        let out = convolve(&signal, &k);
        tk_assert_eq!(out.len(), 30);
        let k_l1: f64 = k.iter().map(|x| x.abs()).sum();
        // |out| <= max|signal| * ||k||_1 for signals in [0, 1].
        tk_assert!(out.iter().all(|&o| o.abs() <= k_l1 + 1e-12));
    });
}
