//! The synthetic scanner: renders latent region time series into a 4-D
//! volume with configurable acquisition artifacts.
//!
//! This is the stand-in for "image acquisition" in the paper's pipeline
//! (Figure 4 reads right-to-left from here): the de-anonymization attack
//! only ever sees what this scanner outputs, and the preprocessing crate
//! must recover the latent region signals well enough for signatures to
//! survive.

use crate::artifacts;
use crate::error::FmriError;
use crate::volume::Volume4D;
use crate::Result;
use neurodeanon_atlas::Parcellation;
use neurodeanon_linalg::{Matrix, Rng64};

/// Acquisition configuration. Default values give a mildly corrupted scan
/// that the full preprocessing pipeline cleans up comfortably; the
/// preprocessing-ablation experiment raises individual knobs.
#[derive(Debug, Clone)]
pub struct ScannerConfig {
    /// Std-dev of voxel-level signal mixing noise (each voxel sees its
    /// region signal plus this much idiosyncratic noise).
    pub voxel_noise: f64,
    /// Linear/quadratic drift amplitude (see [`artifacts::add_drift`]).
    pub drift_amplitude: f64,
    /// Shared global-signal amplitude.
    pub global_signal: f64,
    /// Number of spike artifact frames.
    pub n_spikes: usize,
    /// Spike magnitude.
    pub spike_magnitude: f64,
    /// Static coil gain-bias strength in `[0, 1)`.
    pub gain_bias: f64,
    /// Number of head-motion events.
    pub n_motion_events: usize,
    /// Motion blend weight in `[0, 1]`.
    pub motion_blend: f64,
    /// Thermal (i.i.d.) noise sigma applied last.
    pub thermal_noise: f64,
    /// Baseline intensity of non-brain ("skull") voxels.
    pub skull_intensity: f64,
    /// Simulate EPI slice-timing: slice `z` of `nz` is sampled `z/nz` of a
    /// repetition time late, so each voxel's series is shifted by a
    /// slice-dependent sub-TR offset (first-order linear model). The
    /// slice-time-correction stage of the preprocessing crate inverts it.
    pub slice_timing: bool,
    /// Static anatomical contrast: every voxel gets a constant baseline
    /// (smooth field + voxel-scale granularity) of this magnitude. Real
    /// EPI frames are dominated by anatomy; motion registration locks onto
    /// this static structure rather than functional fluctuation. Constant
    /// offsets are removed by z-scoring/correlation, so connectomes are
    /// unaffected.
    pub anatomy_contrast: f64,
    /// Respiratory-oscillation amplitude (structured out-of-band noise).
    pub respiration: f64,
    /// Respiration frequency in Hz.
    pub respiration_freq: f64,
    /// Repetition time in seconds (needed to place respiration in
    /// frequency).
    pub tr: f64,
}

impl Default for ScannerConfig {
    fn default() -> Self {
        ScannerConfig {
            voxel_noise: 0.3,
            drift_amplitude: 0.8,
            global_signal: 0.8,
            n_spikes: 2,
            spike_magnitude: 4.0,
            gain_bias: 0.2,
            n_motion_events: 1,
            motion_blend: 0.15,
            thermal_noise: 0.2,
            skull_intensity: 2.0,
            slice_timing: false,
            anatomy_contrast: 4.0,
            respiration: 1.0,
            respiration_freq: 0.3,
            tr: 0.72,
        }
    }
}

impl ScannerConfig {
    /// A noiseless scanner: voxels replicate their region signal exactly.
    /// Useful as the "already preprocessed" ground-truth path in tests.
    pub fn clean() -> Self {
        ScannerConfig {
            voxel_noise: 0.0,
            drift_amplitude: 0.0,
            global_signal: 0.0,
            n_spikes: 0,
            spike_magnitude: 0.0,
            gain_bias: 0.0,
            n_motion_events: 0,
            motion_blend: 0.0,
            thermal_noise: 0.0,
            skull_intensity: 0.0,
            slice_timing: false,
            anatomy_contrast: 0.0,
            respiration: 0.0,
            respiration_freq: 0.3,
            tr: 0.72,
        }
    }

    fn validate(&self) -> Result<()> {
        let non_neg = [
            ("voxel_noise", self.voxel_noise),
            ("drift_amplitude", self.drift_amplitude),
            ("global_signal", self.global_signal),
            ("spike_magnitude", self.spike_magnitude),
            ("thermal_noise", self.thermal_noise),
            ("skull_intensity", self.skull_intensity),
            ("anatomy_contrast", self.anatomy_contrast),
            ("respiration", self.respiration),
        ];
        for (name, v) in non_neg {
            if !(v >= 0.0 && v.is_finite()) {
                return Err(FmriError::InvalidParameter {
                    name,
                    reason: "must be non-negative and finite",
                });
            }
        }
        if !(0.0..1.0).contains(&self.gain_bias) {
            return Err(FmriError::InvalidParameter {
                name: "gain_bias",
                reason: "must lie in [0, 1)",
            });
        }
        if !(0.0..=1.0).contains(&self.motion_blend) {
            return Err(FmriError::InvalidParameter {
                name: "motion_blend",
                reason: "must lie in [0, 1]",
            });
        }
        Ok(())
    }
}

/// A synthetic MRI scanner bound to a parcellation (which supplies the voxel
/// grid and the voxel → region map used to render signals).
#[derive(Debug, Clone)]
pub struct Scanner {
    config: ScannerConfig,
}

impl Scanner {
    /// Creates a scanner after validating the configuration.
    pub fn new(config: ScannerConfig) -> Result<Self> {
        config.validate()?;
        Ok(Scanner { config })
    }

    /// Acquisition configuration in use.
    pub fn config(&self) -> &ScannerConfig {
        &self.config
    }

    /// Acquires a 4-D volume from latent `region × time` signals.
    ///
    /// Every brain voxel receives its region's time series plus voxel noise;
    /// non-brain voxels get a static skull intensity; then the artifact
    /// stack is applied in physical order (gain bias → drift → global
    /// signal → motion → spikes → thermal noise).
    pub fn acquire(
        &self,
        region_ts: &Matrix,
        parcellation: &Parcellation,
        rng: &mut Rng64,
    ) -> Result<Volume4D> {
        if region_ts.rows() != parcellation.n_regions() {
            return Err(FmriError::ShapeMismatch {
                expected: parcellation.n_regions(),
                got: region_ts.rows(),
            });
        }
        let t = region_ts.cols();
        if t == 0 {
            return Err(FmriError::EmptyVolume);
        }
        let (nx, ny, nz) = parcellation.grid().dims();
        let mut vol = Volume4D::zeros(nx, ny, nz, t)?;
        let cfg = &self.config;

        // Static anatomy: a smooth field plus voxel-scale granularity,
        // constant across time.
        let anatomy: Vec<f64> = if cfg.anatomy_contrast > 0.0 {
            let field = crate::field::smooth_field((nx, ny, nz), rng);
            field
                .iter()
                .map(|&f| cfg.anatomy_contrast * (f + 0.6 * rng.gaussian()))
                .collect()
        } else {
            vec![0.0; nx * ny * nz]
        };

        for v in 0..vol.n_voxels() {
            match parcellation.region_of(v) {
                Some(r) => {
                    let base = anatomy[v];
                    let src = region_ts.row(r);
                    // Slice-timing: sample the latent series at t + z/nz.
                    let slice_frac = if cfg.slice_timing {
                        let z = v / (nx * ny);
                        z as f64 / nz as f64
                    } else {
                        0.0
                    };
                    let dst = vol.voxel_ts_mut(v);
                    for (i, d) in dst.iter_mut().enumerate() {
                        let s = if slice_frac > 0.0 && i + 1 < t {
                            (1.0 - slice_frac) * src[i] + slice_frac * src[i + 1]
                        } else {
                            src[i]
                        };
                        let noise = if cfg.voxel_noise > 0.0 {
                            cfg.voxel_noise * rng.gaussian()
                        } else {
                            0.0
                        };
                        *d = base + s + noise;
                    }
                }
                None => {
                    if cfg.skull_intensity > 0.0 {
                        let base = cfg.skull_intensity * (0.8 + 0.4 * rng.uniform());
                        for d in vol.voxel_ts_mut(v) {
                            *d = base + 0.05 * rng.gaussian();
                        }
                    }
                }
            }
        }

        if cfg.gain_bias > 0.0 {
            artifacts::add_gain_bias(&mut vol, cfg.gain_bias)?;
        }
        if cfg.drift_amplitude > 0.0 {
            artifacts::add_drift(&mut vol, cfg.drift_amplitude, rng)?;
        }
        if cfg.global_signal > 0.0 {
            artifacts::add_global_signal(&mut vol, cfg.global_signal, rng)?;
        }
        if cfg.n_motion_events > 0 && cfg.motion_blend > 0.0 {
            artifacts::add_head_motion(&mut vol, cfg.n_motion_events, cfg.motion_blend, rng)?;
        }
        if cfg.respiration > 0.0 {
            artifacts::add_respiration(
                &mut vol,
                cfg.respiration,
                cfg.respiration_freq,
                cfg.tr,
                rng,
            )?;
        }
        if cfg.n_spikes > 0 && cfg.spike_magnitude > 0.0 {
            artifacts::add_spikes(&mut vol, cfg.n_spikes, cfg.spike_magnitude, rng)?;
        }
        if cfg.thermal_noise > 0.0 {
            artifacts::add_thermal_noise(&mut vol, cfg.thermal_noise, rng)?;
        }
        Ok(vol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_atlas::{grown_atlas, VoxelGrid};

    fn parc() -> Parcellation {
        grown_atlas("scan-test", VoxelGrid::new(12, 12, 12).unwrap(), 10, 42).unwrap()
    }

    fn region_signals(n: usize, t: usize) -> Matrix {
        Matrix::from_fn(n, t, |r, c| ((c as f64 * 0.31 + r as f64).sin()) * 2.0)
    }

    #[test]
    fn clean_scan_replicates_region_signals() {
        let p = parc();
        let ts = region_signals(10, 30);
        let scanner = Scanner::new(ScannerConfig::clean()).unwrap();
        let vol = scanner.acquire(&ts, &p, &mut Rng64::new(1)).unwrap();
        for v in 0..vol.n_voxels() {
            match p.region_of(v) {
                Some(r) => assert_eq!(vol.voxel_ts(v), ts.row(r)),
                None => assert!(vol.voxel_ts(v).iter().all(|&x| x == 0.0)),
            }
        }
    }

    #[test]
    fn default_scan_keeps_signal_recoverable() {
        // Region-averaging a default noisy scan should still correlate
        // strongly with the latent region signal.
        use neurodeanon_atlas::region_average;
        use neurodeanon_linalg::stats::pearson;
        let p = parc();
        let ts = region_signals(10, 120);
        let scanner = Scanner::new(ScannerConfig::default()).unwrap();
        let vol = scanner.acquire(&ts, &p, &mut Rng64::new(2)).unwrap();
        let reduced = region_average(&p, vol.as_matrix()).unwrap();
        let mut good = 0;
        for r in 0..10 {
            if pearson(reduced.row(r), ts.row(r)).unwrap() > 0.5 {
                good += 1;
            }
        }
        assert!(good >= 7, "only {good}/10 regions recoverable");
    }

    #[test]
    fn skull_voxels_have_intensity() {
        let p = parc();
        let ts = region_signals(10, 10);
        let mut cfg = ScannerConfig::clean();
        cfg.skull_intensity = 5.0;
        let scanner = Scanner::new(cfg).unwrap();
        let vol = scanner.acquire(&ts, &p, &mut Rng64::new(3)).unwrap();
        let skull: Vec<usize> = (0..vol.n_voxels())
            .filter(|&v| p.region_of(v).is_none())
            .collect();
        assert!(!skull.is_empty());
        for &v in skull.iter().take(20) {
            assert!(vol.voxel_ts(v)[0] > 1.0);
        }
    }

    #[test]
    fn acquire_checks_region_count() {
        let p = parc();
        let scanner = Scanner::new(ScannerConfig::clean()).unwrap();
        let bad = region_signals(9, 10);
        assert!(matches!(
            scanner.acquire(&bad, &p, &mut Rng64::new(1)),
            Err(FmriError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn config_validation() {
        let mut cfg = ScannerConfig::default();
        cfg.gain_bias = 1.0;
        assert!(Scanner::new(cfg).is_err());
        let mut cfg = ScannerConfig::default();
        cfg.voxel_noise = -1.0;
        assert!(Scanner::new(cfg).is_err());
        let mut cfg = ScannerConfig::default();
        cfg.motion_blend = 2.0;
        assert!(Scanner::new(cfg).is_err());
    }

    #[test]
    fn acquisition_is_deterministic_per_seed() {
        let p = parc();
        let ts = region_signals(10, 20);
        let scanner = Scanner::new(ScannerConfig::default()).unwrap();
        let a = scanner.acquire(&ts, &p, &mut Rng64::new(9)).unwrap();
        let b = scanner.acquire(&ts, &p, &mut Rng64::new(9)).unwrap();
        assert_eq!(a, b);
    }
}
