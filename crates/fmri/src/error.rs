//! Error type for the synthetic fMRI layer.

use std::fmt;

/// Errors from volume handling and synthetic acquisition.
#[derive(Debug, Clone, PartialEq)]
pub enum FmriError {
    /// Data length does not match the declared volume shape.
    ShapeMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Provided number of elements.
        got: usize,
    },
    /// A volume must have at least one voxel and one time point.
    EmptyVolume,
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Constraint description.
        reason: &'static str,
    },
    /// Error propagated from the linear-algebra layer.
    Linalg(neurodeanon_linalg::LinalgError),
    /// Error propagated from the atlas layer.
    Atlas(neurodeanon_atlas::AtlasError),
}

impl fmt::Display for FmriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FmriError::ShapeMismatch { expected, got } => {
                write!(
                    f,
                    "volume shape mismatch: expected {expected} elements, got {got}"
                )
            }
            FmriError::EmptyVolume => write!(f, "volume has zero voxels or time points"),
            FmriError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            FmriError::Linalg(e) => write!(f, "linalg error: {e}"),
            FmriError::Atlas(e) => write!(f, "atlas error: {e}"),
        }
    }
}

impl std::error::Error for FmriError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FmriError::Linalg(e) => Some(e),
            FmriError::Atlas(e) => Some(e),
            _ => None,
        }
    }
}

impl From<neurodeanon_linalg::LinalgError> for FmriError {
    fn from(e: neurodeanon_linalg::LinalgError) -> Self {
        FmriError::Linalg(e)
    }
}

impl From<neurodeanon_atlas::AtlasError> for FmriError {
    fn from(e: neurodeanon_atlas::AtlasError) -> Self {
        FmriError::Atlas(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FmriError::ShapeMismatch {
            expected: 10,
            got: 5,
        };
        assert!(e.to_string().contains("10"));
        let wrapped = FmriError::Linalg(neurodeanon_linalg::LinalgError::EmptyMatrix { op: "x" });
        assert!(std::error::Error::source(&wrapped).is_some());
        assert!(std::error::Error::source(&FmriError::EmptyVolume).is_none());
    }
}
