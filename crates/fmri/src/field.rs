//! Smooth random spatial fields.
//!
//! Scanner artifacts are spatially structured: coil sensitivity, heating
//! drift, and vascular density all vary smoothly across the head rather
//! than independently per voxel. [`smooth_field`] draws a random low-order
//! spatial pattern in `[-1, 1]` used by the artifact injectors, so that
//! artifacts *survive region averaging* — which is what makes the
//! preprocessing pipeline genuinely necessary (DESIGN.md E10).

use neurodeanon_linalg::Rng64;

/// Draws a smooth random spatial field over the grid, one value per voxel
/// in flat (x-fastest) order, range approximately `[-1, 1]`.
///
/// The field is a sum of three low-frequency plane waves with random
/// orientation and phase — smooth at the scale of parcels, different on
/// every draw.
pub fn smooth_field(dims: (usize, usize, usize), rng: &mut Rng64) -> Vec<f64> {
    let (nx, ny, nz) = dims;
    // Three random spatial frequencies, at most ~1.5 cycles across the box.
    let mut waves = Vec::with_capacity(3);
    for _ in 0..3 {
        let kx = rng.uniform_range(-1.5, 1.5) * std::f64::consts::TAU / nx.max(1) as f64;
        let ky = rng.uniform_range(-1.5, 1.5) * std::f64::consts::TAU / ny.max(1) as f64;
        let kz = rng.uniform_range(-1.5, 1.5) * std::f64::consts::TAU / nz.max(1) as f64;
        let phase = rng.uniform_range(0.0, std::f64::consts::TAU);
        let amp = rng.uniform_range(0.5, 1.0);
        waves.push((kx, ky, kz, phase, amp));
    }
    let mut out = Vec::with_capacity(nx * ny * nz);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let mut v = 0.0;
                for &(kx, ky, kz, phase, amp) in &waves {
                    v += amp * (kx * x as f64 + ky * y as f64 + kz * z as f64 + phase).sin();
                }
                out.push(v / 3.0_f64.sqrt());
            }
        }
    }
    // Normalize to roughly unit peak.
    let max = out.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-12);
    for v in &mut out {
        *v /= max;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_in_range_and_smooth() {
        let mut rng = Rng64::new(3);
        let f = smooth_field((12, 12, 12), &mut rng);
        assert_eq!(f.len(), 12 * 12 * 12);
        assert!(f.iter().all(|v| (-1.0..=1.0).contains(v)));
        // Smoothness: neighbouring voxels along x change gradually (well
        // under the field's ±1 range; wavelength ≥ 2/3 of the box).
        for z in 0..12 {
            for y in 0..12 {
                for x in 0..11 {
                    let a = f[x + 12 * (y + 12 * z)];
                    let b = f[x + 1 + 12 * (y + 12 * z)];
                    assert!((a - b).abs() < 0.9, "rough at ({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn field_varies_across_space() {
        let mut rng = Rng64::new(4);
        let f = smooth_field((16, 16, 16), &mut rng);
        let min = f.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = f.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > 0.8,
            "field nearly constant: range {}",
            max - min
        );
    }

    #[test]
    fn different_draws_differ() {
        let mut rng = Rng64::new(5);
        let a = smooth_field((8, 8, 8), &mut rng);
        let b = smooth_field((8, 8, 8), &mut rng);
        assert_ne!(a, b);
    }
}
