//! Multi-site acquisition simulation, exactly as in §3.3.5 of the paper:
//!
//! > "for each time-series signal in the second session … we add Gaussian
//! > noise whose mean is equal to the mean of the original signal and whose
//! > variance is a fraction of the variance of the original signal."

use crate::error::FmriError;
use crate::Result;
use neurodeanon_linalg::{Matrix, Rng64};

/// Applies the paper's multi-site noise model to every row (time series) of
/// a `series × time` matrix, in place.
///
/// For row `r` with mean `μ_r` and variance `σ_r²`, each sample gains an
/// independent draw from `N(μ_r, fraction · σ_r²)`. `fraction` is the
/// "Noise Variance (in %)" of Table 2 divided by 100 (e.g. `0.10`, `0.20`,
/// `0.30`).
pub fn multi_site_noise(ts: &mut Matrix, fraction: f64, rng: &mut Rng64) -> Result<()> {
    if !(fraction >= 0.0 && fraction.is_finite()) {
        return Err(FmriError::InvalidParameter {
            name: "fraction",
            reason: "noise variance fraction must be non-negative and finite",
        });
    }
    let t = ts.cols();
    if t == 0 {
        return Err(FmriError::EmptyVolume);
    }
    for r in 0..ts.rows() {
        let row = ts.row_mut(r);
        let mean = row.iter().sum::<f64>() / t as f64;
        let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / t as f64;
        let sd = (fraction * var).sqrt();
        for x in row.iter_mut() {
            *x += rng.normal(mean, sd);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_matrix() -> Matrix {
        Matrix::from_fn(5, 400, |r, c| {
            (c as f64 * 0.1 + r as f64).sin() * (r as f64 + 1.0) + r as f64 * 10.0
        })
    }

    #[test]
    fn zero_fraction_adds_signal_mean_only() {
        let mut m = series_matrix();
        let orig = m.clone();
        multi_site_noise(&mut m, 0.0, &mut Rng64::new(1)).unwrap();
        // With zero variance the "noise" is a constant shift by the row mean.
        for r in 0..m.rows() {
            let mean = orig.row(r).iter().sum::<f64>() / orig.cols() as f64;
            for (a, b) in m.row(r).iter().zip(orig.row(r)) {
                assert!((a - (b + mean)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn noise_variance_scales_with_fraction() {
        let mut m = series_matrix();
        let orig = m.clone();
        multi_site_noise(&mut m, 0.25, &mut Rng64::new(7)).unwrap();
        for r in 0..m.rows() {
            let t = m.cols() as f64;
            let omean = orig.row(r).iter().sum::<f64>() / t;
            let ovar = orig
                .row(r)
                .iter()
                .map(|x| (x - omean) * (x - omean))
                .sum::<f64>()
                / t;
            // Residual = added noise; its variance should be ≈ 0.25 × ovar.
            let resid: Vec<f64> = m
                .row(r)
                .iter()
                .zip(orig.row(r))
                .map(|(a, b)| a - b)
                .collect();
            let rmean = resid.iter().sum::<f64>() / t;
            let rvar = resid.iter().map(|x| (x - rmean) * (x - rmean)).sum::<f64>() / t;
            let ratio = rvar / ovar;
            assert!((ratio - 0.25).abs() < 0.12, "row {r}: ratio {ratio}");
            // Noise mean ≈ signal mean, per the paper's model.
            assert!(
                (rmean - omean).abs() < 0.25 * ovar.sqrt().max(1.0),
                "row {r}"
            );
        }
    }

    #[test]
    fn correlation_degrades_monotonically_with_noise() {
        // The mechanism behind Table 2: more site noise, weaker correlation
        // between the clean and noisy versions of the same series.
        use neurodeanon_linalg::stats::pearson;
        let clean = series_matrix();
        let mut rs = Vec::new();
        for &frac in &[0.1, 0.5, 2.0] {
            let mut noisy = clean.clone();
            multi_site_noise(&mut noisy, frac, &mut Rng64::new(11)).unwrap();
            rs.push(pearson(clean.row(0), noisy.row(0)).unwrap());
        }
        assert!(rs[0] > rs[1] && rs[1] > rs[2], "{rs:?}");
        assert!(rs[0] > 0.9);
    }

    #[test]
    fn rejects_bad_fraction() {
        let mut m = series_matrix();
        assert!(multi_site_noise(&mut m, -0.1, &mut Rng64::new(1)).is_err());
        assert!(multi_site_noise(&mut m, f64::INFINITY, &mut Rng64::new(1)).is_err());
    }

    #[test]
    fn rejects_empty_series() {
        let mut m = Matrix::zeros(3, 0);
        assert!(multi_site_noise(&mut m, 0.1, &mut Rng64::new(1)).is_err());
    }
}
