//! The 4-D functional image container.

use crate::error::FmriError;
use crate::Result;
use neurodeanon_linalg::Matrix;

/// A 4-D functional MRI: three spatial dimensions plus time (§3.1 of the
/// paper: "a functional MRI is a 4D image … each 3D unit is a voxel").
///
/// Storage is a `voxel × time` matrix with voxels in x-fastest flat order —
/// the same order `neurodeanon_atlas::VoxelGrid` uses — so the volume plugs
/// straight into region averaging and the preprocessing stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Volume4D {
    nx: usize,
    ny: usize,
    nz: usize,
    /// `voxel × time` samples.
    data: Matrix,
}

impl Volume4D {
    /// Creates a zero-filled volume.
    pub fn zeros(nx: usize, ny: usize, nz: usize, t: usize) -> Result<Self> {
        if nx == 0 || ny == 0 || nz == 0 || t == 0 {
            return Err(FmriError::EmptyVolume);
        }
        Ok(Volume4D {
            nx,
            ny,
            nz,
            data: Matrix::zeros(nx * ny * nz, t),
        })
    }

    /// Wraps an existing `voxel × time` matrix; the row count must equal
    /// `nx · ny · nz`.
    pub fn from_matrix(nx: usize, ny: usize, nz: usize, data: Matrix) -> Result<Self> {
        if nx == 0 || ny == 0 || nz == 0 || data.cols() == 0 {
            return Err(FmriError::EmptyVolume);
        }
        if data.rows() != nx * ny * nz {
            return Err(FmriError::ShapeMismatch {
                expected: nx * ny * nz,
                got: data.rows(),
            });
        }
        Ok(Volume4D { nx, ny, nz, data })
    }

    /// Spatial dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Number of time points.
    pub fn time_points(&self) -> usize {
        self.data.cols()
    }

    /// Number of voxels.
    pub fn n_voxels(&self) -> usize {
        self.data.rows()
    }

    /// Flat voxel index for `(x, y, z)`, x fastest.
    #[inline]
    pub fn voxel_index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    /// Time series of one voxel.
    pub fn voxel_ts(&self, voxel: usize) -> &[f64] {
        self.data.row(voxel)
    }

    /// Mutable time series of one voxel.
    pub fn voxel_ts_mut(&mut self, voxel: usize) -> &mut [f64] {
        self.data.row_mut(voxel)
    }

    /// Sample at `(voxel, t)`.
    pub fn sample(&self, voxel: usize, t: usize) -> f64 {
        self.data[(voxel, t)]
    }

    /// Borrow the underlying `voxel × time` matrix.
    pub fn as_matrix(&self) -> &Matrix {
        &self.data
    }

    /// Mutably borrow the underlying matrix.
    pub fn as_matrix_mut(&mut self) -> &mut Matrix {
        &mut self.data
    }

    /// Consume into the underlying matrix.
    pub fn into_matrix(self) -> Matrix {
        self.data
    }

    /// The 3-D snapshot at time `t` as a flat voxel vector.
    pub fn frame(&self, t: usize) -> Result<Vec<f64>> {
        if t >= self.time_points() {
            return Err(FmriError::InvalidParameter {
                name: "t",
                reason: "frame index beyond last time point",
            });
        }
        Ok((0..self.n_voxels()).map(|v| self.data[(v, t)]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let v = Volume4D::zeros(4, 5, 6, 7).unwrap();
        assert_eq!(v.dims(), (4, 5, 6));
        assert_eq!(v.time_points(), 7);
        assert_eq!(v.n_voxels(), 120);
    }

    #[test]
    fn rejects_degenerate() {
        assert!(Volume4D::zeros(0, 5, 5, 5).is_err());
        assert!(Volume4D::zeros(5, 5, 5, 0).is_err());
    }

    #[test]
    fn from_matrix_validates_rows() {
        let m = Matrix::zeros(11, 3);
        assert!(matches!(
            Volume4D::from_matrix(2, 2, 3, m),
            Err(FmriError::ShapeMismatch { .. })
        ));
        let ok = Matrix::zeros(12, 3);
        assert!(Volume4D::from_matrix(2, 2, 3, ok).is_ok());
    }

    #[test]
    fn voxel_index_flat_order() {
        let v = Volume4D::zeros(3, 4, 5, 2).unwrap();
        assert_eq!(v.voxel_index(0, 0, 0), 0);
        assert_eq!(v.voxel_index(1, 0, 0), 1);
        assert_eq!(v.voxel_index(0, 1, 0), 3);
        assert_eq!(v.voxel_index(0, 0, 1), 12);
    }

    #[test]
    fn voxel_ts_roundtrip() {
        let mut v = Volume4D::zeros(2, 2, 2, 4).unwrap();
        v.voxel_ts_mut(3).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.voxel_ts(3), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.sample(3, 2), 3.0);
    }

    #[test]
    fn frame_extracts_snapshot() {
        let mut v = Volume4D::zeros(2, 1, 1, 3).unwrap();
        v.voxel_ts_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        v.voxel_ts_mut(1).copy_from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(v.frame(1).unwrap(), vec![2.0, 5.0]);
        assert!(v.frame(3).is_err());
    }
}
