#![warn(missing_docs)]

//! # neurodeanon-fmri
//!
//! Synthetic functional-MRI substrate: everything the paper obtained from a
//! real 3T scanner, rebuilt as a generative model (see DESIGN.md §1 for the
//! substitution argument).
//!
//! * [`signal`] — BOLD signal building blocks: a double-gamma hemodynamic
//!   response function, block task designs, convolution, and band-limited
//!   resting-state fluctuations.
//! * [`volume`] — [`Volume4D`], the `voxel × time` container produced by
//!   acquisition (3 spatial dimensions + time, §3.1 of the paper).
//! * [`artifacts`] — the spatial/temporal artifacts the preprocessing
//!   pipeline of Figure 4 exists to remove: scanner drift, head motion,
//!   global physiological signal, spike artifacts, coil gain bias, and
//!   thermal noise.
//! * [`scanner`] — [`scanner::Scanner`]: renders latent region time series
//!   into an artifact-laden 4-D volume, the "image acquisition" step.
//! * [`noise`] — the paper's §3.3.5 multi-site simulation: Gaussian noise
//!   with mean equal to the signal mean and variance a fraction of the
//!   signal variance.

pub mod artifacts;
pub mod error;
pub mod field;
pub mod noise;
pub mod scanner;
pub mod signal;
pub mod volume;

pub use error::FmriError;
pub use volume::Volume4D;

/// Result alias for fMRI operations.
pub type Result<T> = std::result::Result<T, FmriError>;
