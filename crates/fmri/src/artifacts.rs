//! Acquisition artifacts.
//!
//! Each injector perturbs a `voxel × time` matrix in place with one of the
//! artifact classes the minimal preprocessing pipeline (paper Figure 4) must
//! remove. The preprocessing-ablation experiment (DESIGN.md E10) toggles
//! pipeline stages against volumes corrupted by these functions, so the
//! injectors and the cleaners are deliberately written as inverse pairs.

use crate::error::FmriError;
use crate::field::smooth_field;
use crate::volume::Volume4D;
use crate::Result;
use neurodeanon_linalg::Rng64;

/// Adds scanner-heating drift: a linear + quadratic trend whose
/// coefficients vary *smoothly* across the head (two random spatial fields
/// scaled by `amplitude`) plus small per-voxel jitter. Spatial smoothness
/// means the trend survives region averaging — the reason the temporal
/// detrending stage exists.
pub fn add_drift(vol: &mut Volume4D, amplitude: f64, rng: &mut Rng64) -> Result<()> {
    if !(amplitude >= 0.0 && amplitude.is_finite()) {
        return Err(FmriError::InvalidParameter {
            name: "amplitude",
            reason: "drift amplitude must be non-negative and finite",
        });
    }
    let t = vol.time_points();
    let lin_field = smooth_field(vol.dims(), rng);
    let quad_field = smooth_field(vol.dims(), rng);
    for v in 0..vol.n_voxels() {
        let a = amplitude * (lin_field[v] + 0.2 * rng.gaussian());
        let b = amplitude * (quad_field[v] + 0.2 * rng.gaussian());
        let ts = vol.voxel_ts_mut(v);
        for (i, x) in ts.iter_mut().enumerate() {
            let tau = i as f64 / (t.max(2) - 1) as f64;
            *x += a * tau + b * tau * tau;
        }
    }
    Ok(())
}

/// Adds a global physiological signal: one smooth random series shared by
/// all voxels, entering each voxel with a smoothly varying positive gain
/// (vascular density differs across the head). Global signal regression
/// removes it: every voxel carries the same temporal profile, so the
/// per-series regression coefficient absorbs the local gain.
pub fn add_global_signal(vol: &mut Volume4D, amplitude: f64, rng: &mut Rng64) -> Result<()> {
    if !(amplitude >= 0.0 && amplitude.is_finite()) {
        return Err(FmriError::InvalidParameter {
            name: "amplitude",
            reason: "global-signal amplitude must be non-negative and finite",
        });
    }
    let t = vol.time_points();
    // Smooth series: random walk with damping, then zero-meaned.
    let mut g = vec![0.0; t];
    let mut x = 0.0;
    for gi in &mut g {
        x = 0.95 * x + rng.gaussian() * 0.3;
        *gi = x;
    }
    let mean = g.iter().sum::<f64>() / t as f64;
    for gi in &mut g {
        *gi = (*gi - mean) * amplitude;
    }
    let gain_field = smooth_field(vol.dims(), rng);
    for v in 0..vol.n_voxels() {
        // Positive gain in [0.25, 1.75], smooth across space.
        let gain = 1.0 + 0.75 * gain_field[v];
        let ts = vol.voxel_ts_mut(v);
        for (xi, gi) in ts.iter_mut().zip(&g) {
            *xi += gain * gi;
        }
    }
    Ok(())
}

/// Injects spike artifacts: at `n_spikes` random time points, a random
/// subset of voxels gets a large additive excursion (motion "jerks" and
/// gradient glitches). Returns the affected time indices so QC tests can
/// assert scrubbing removes them.
pub fn add_spikes(
    vol: &mut Volume4D,
    n_spikes: usize,
    magnitude: f64,
    rng: &mut Rng64,
) -> Result<Vec<usize>> {
    if !(magnitude >= 0.0 && magnitude.is_finite()) {
        return Err(FmriError::InvalidParameter {
            name: "magnitude",
            reason: "spike magnitude must be non-negative and finite",
        });
    }
    let t = vol.time_points();
    let frames = rng.sample_indices(t, n_spikes);
    for &frame in &frames {
        // A spike displaces the whole image coherently (motion jerk): a
        // smooth spatial pattern of one sign, plus per-voxel noise.
        let field = smooth_field(vol.dims(), rng);
        for v in 0..vol.n_voxels() {
            vol.voxel_ts_mut(v)[frame] += magnitude * (field[v] + 0.3 * rng.gaussian());
        }
    }
    let mut sorted = frames.clone();
    sorted.sort_unstable();
    Ok(sorted)
}

/// Applies a static multiplicative coil-gain bias field: voxel `v` is scaled
/// by `1 + strength · g(v)` where `g` is a smooth spatial gradient across the
/// volume (field inhomogeneity, paper §3.2.1 "non-homogeneous magnetic
/// fields"). Z-scoring each voxel time series removes a static gain exactly.
pub fn add_gain_bias(vol: &mut Volume4D, strength: f64) -> Result<()> {
    if !(0.0..1.0).contains(&strength) {
        return Err(FmriError::InvalidParameter {
            name: "strength",
            reason: "gain bias strength must lie in [0, 1)",
        });
    }
    let (nx, ny, nz) = vol.dims();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                // Smooth low-order spatial polynomial in [-1, 1].
                let gx = 2.0 * x as f64 / (nx.max(2) - 1) as f64 - 1.0;
                let gy = 2.0 * y as f64 / (ny.max(2) - 1) as f64 - 1.0;
                let gz = 2.0 * z as f64 / (nz.max(2) - 1) as f64 - 1.0;
                let g = 0.5 * gx + 0.3 * gy * gy - 0.2 * gz;
                let gain = 1.0 + strength * g;
                let v = vol.voxel_index(x, y, z);
                for s in vol.voxel_ts_mut(v) {
                    *s *= gain;
                }
            }
        }
    }
    Ok(())
}

/// Adds a respiratory oscillation: a shared sinusoid at `freq_hz` (typical
/// breathing ≈ 0.3 Hz, outside the 0.008–0.1 Hz connectivity band) whose
/// amplitude varies per voxel (vascular density) and whose phase/amplitude
/// are random per scan. Because the per-voxel gains differ, the artifact
/// inflates *specific* region-pair correlations differently in every scan —
/// precisely the structured out-of-band noise the band-pass stage removes.
pub fn add_respiration(
    vol: &mut Volume4D,
    amplitude: f64,
    freq_hz: f64,
    tr: f64,
    rng: &mut Rng64,
) -> Result<()> {
    if !(amplitude >= 0.0) || !amplitude.is_finite() || !(freq_hz > 0.0) || !(tr > 0.0) {
        return Err(FmriError::InvalidParameter {
            name: "respiration",
            reason: "need amplitude >= 0, freq_hz > 0, tr > 0",
        });
    }
    let t = vol.time_points();
    let phase = rng.uniform_range(0.0, std::f64::consts::TAU);
    // Slight per-scan frequency jitter (breathing rate varies).
    let f = freq_hz * rng.uniform_range(0.9, 1.1);
    let wave: Vec<f64> = (0..t)
        .map(|i| (std::f64::consts::TAU * f * i as f64 * tr + phase).sin())
        .collect();
    // Vascular gain: smooth positive field, different every scan, so the
    // artifact distorts *specific* region pairs differently per scan.
    let gain_field = smooth_field(vol.dims(), rng);
    for v in 0..vol.n_voxels() {
        let gain = amplitude * (0.6 + 0.4 * gain_field[v]);
        let ts = vol.voxel_ts_mut(v);
        for (x, w) in ts.iter_mut().zip(&wave) {
            *x += gain * w;
        }
    }
    Ok(())
}

/// Adds i.i.d. thermal noise with standard deviation `sigma` to every sample.
pub fn add_thermal_noise(vol: &mut Volume4D, sigma: f64, rng: &mut Rng64) -> Result<()> {
    if !(sigma >= 0.0 && sigma.is_finite()) {
        return Err(FmriError::InvalidParameter {
            name: "sigma",
            reason: "noise sigma must be non-negative and finite",
        });
    }
    for v in 0..vol.n_voxels() {
        for s in vol.voxel_ts_mut(v) {
            *s += sigma * rng.gaussian();
        }
    }
    Ok(())
}

/// Simulates head motion: from each of `n_events` random onsets to the end
/// of the scan, every voxel's value is replaced by a blend with its +x
/// neighbour (`(1−w)·self + w·neighbour`), emulating a small rigid shift
/// that motion correction must undo. Returns the onset frames.
pub fn add_head_motion(
    vol: &mut Volume4D,
    n_events: usize,
    blend: f64,
    rng: &mut Rng64,
) -> Result<Vec<usize>> {
    if !(0.0..=1.0).contains(&blend) {
        return Err(FmriError::InvalidParameter {
            name: "blend",
            reason: "motion blend weight must lie in [0, 1]",
        });
    }
    let t = vol.time_points();
    let (nx, ny, nz) = vol.dims();
    let mut onsets = rng.sample_indices(t, n_events);
    onsets.sort_unstable();
    for &onset in &onsets {
        // Apply the shift to all frames from `onset` on. Iterate x from 0 so
        // each voxel blends with the *original* value of x+1 — process a
        // frame snapshot per z-row to avoid cascading.
        for frame in onset..t {
            for z in 0..nz {
                for y in 0..ny {
                    // Save original row values along x before blending.
                    let orig: Vec<f64> = (0..nx)
                        .map(|x| vol.sample(vol.voxel_index(x, y, z), frame))
                        .collect();
                    for x in 0..nx {
                        let neighbour = orig[(x + 1).min(nx - 1)];
                        let v = vol.voxel_index(x, y, z);
                        let cur = vol.voxel_ts_mut(v);
                        cur[frame] = (1.0 - blend) * orig[x] + blend * neighbour;
                    }
                }
            }
        }
    }
    Ok(onsets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vol(t: usize) -> Volume4D {
        Volume4D::zeros(6, 6, 6, t).unwrap()
    }

    #[test]
    fn drift_is_zero_at_first_frame_and_grows() {
        let mut v = vol(50);
        add_drift(&mut v, 2.0, &mut Rng64::new(1)).unwrap();
        // First frame untouched (τ = 0).
        for vox in 0..v.n_voxels() {
            assert_eq!(v.sample(vox, 0), 0.0);
        }
        // Energy at the last frame strictly positive for most voxels.
        let nonzero = (0..v.n_voxels())
            .filter(|&vox| v.sample(vox, 49).abs() > 1e-12)
            .count();
        assert!(nonzero > v.n_voxels() / 2);
    }

    #[test]
    fn drift_rejects_negative_amplitude() {
        assert!(add_drift(&mut vol(5), -1.0, &mut Rng64::new(1)).is_err());
        assert!(add_drift(&mut vol(5), f64::NAN, &mut Rng64::new(1)).is_err());
    }

    #[test]
    fn global_signal_shares_temporal_profile_with_varying_gain() {
        let mut v = vol(30);
        add_global_signal(&mut v, 1.5, &mut Rng64::new(2)).unwrap();
        // All voxels carry the same profile up to a positive scale factor:
        // pairwise correlation of any two voxel series is 1.
        let a = v.voxel_ts(0).to_vec();
        for vox in [1, 7, 100, 200] {
            let b = v.voxel_ts(vox);
            let r = neurodeanon_linalg::stats::pearson(&a, b).unwrap();
            assert!(r > 0.999, "voxel {vox}: corr {r}");
        }
        // Gains differ across space.
        let scale0 = a.iter().map(|x| x * x).sum::<f64>();
        let scale_far = v.voxel_ts(200).iter().map(|x| x * x).sum::<f64>();
        assert!((scale0 - scale_far).abs() > 1e-9);
        // Zero mean by construction.
        let mean: f64 = a.iter().sum::<f64>() / 30.0;
        assert!(mean.abs() < 1e-10);
    }

    #[test]
    fn spikes_land_on_reported_frames() {
        let mut v = vol(40);
        let frames = add_spikes(&mut v, 3, 10.0, &mut Rng64::new(3)).unwrap();
        assert_eq!(frames.len(), 3);
        // Spiked frames carry energy; untouched frames carry none.
        let energy = |t: usize| -> f64 { (0..v.n_voxels()).map(|vx| v.sample(vx, t).abs()).sum() };
        let clean: f64 = (0..40)
            .filter(|t| !frames.contains(t))
            .map(energy)
            .sum::<f64>();
        assert_eq!(clean, 0.0);
        for &f in &frames {
            assert!(energy(f) > 1.0);
        }
    }

    #[test]
    fn gain_bias_scales_multiplicatively() {
        let mut v = vol(4);
        for vox in 0..v.n_voxels() {
            v.voxel_ts_mut(vox).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        }
        add_gain_bias(&mut v, 0.3).unwrap();
        // Each voxel's series stays proportional to [1,2,3,4].
        for vox in 0..v.n_voxels() {
            let ts = v.voxel_ts(vox);
            let g = ts[0];
            assert!(g > 0.0);
            for (i, &s) in ts.iter().enumerate() {
                assert!((s - g * (i as f64 + 1.0)).abs() < 1e-10);
            }
        }
        assert!(add_gain_bias(&mut vol(2), 1.5).is_err());
    }

    #[test]
    fn thermal_noise_has_expected_sigma() {
        let mut v = vol(100);
        add_thermal_noise(&mut v, 2.0, &mut Rng64::new(4)).unwrap();
        let all: Vec<f64> = (0..v.n_voxels())
            .flat_map(|vx| v.voxel_ts(vx).to_vec())
            .collect();
        let mean: f64 = all.iter().sum::<f64>() / all.len() as f64;
        let var: f64 = all.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / all.len() as f64;
        assert!((var.sqrt() - 2.0).abs() < 0.05);
    }

    #[test]
    fn head_motion_blends_neighbours() {
        let mut v = Volume4D::zeros(4, 1, 1, 2).unwrap();
        // Gradient along x at both frames: 0, 1, 2, 3.
        for x in 0..4 {
            let idx = v.voxel_index(x, 0, 0);
            v.voxel_ts_mut(idx).copy_from_slice(&[x as f64, x as f64]);
        }
        // Force a single onset at frame 0 by asking for 1 event on t=2 until
        // we get onset 0; instead test deterministically with blend=1:
        // value becomes the +x neighbour.
        let mut rng = Rng64::new(5);
        let onsets = add_head_motion(&mut v, 1, 1.0, &mut rng).unwrap();
        let onset = onsets[0];
        for x in 0..4 {
            let idx = v.voxel_index(x, 0, 0);
            let expect = ((x + 1).min(3)) as f64;
            assert_eq!(v.sample(idx, onset), expect);
        }
    }

    #[test]
    fn head_motion_validates_blend() {
        assert!(add_head_motion(&mut vol(4), 1, 1.5, &mut Rng64::new(1)).is_err());
    }
}
