//! BOLD signal building blocks.
//!
//! The blood-oxygen-level-dependent response to neural activity is modelled
//! with the standard double-gamma hemodynamic response function (HRF); task
//! sessions are block designs convolved with the HRF; resting-state
//! fluctuations are band-limited noise in the 0.008–0.1 Hz band the paper's
//! temporal filtering targets.

use crate::error::FmriError;
use crate::Result;
use neurodeanon_linalg::Rng64;

/// Canonical double-gamma HRF sampled at `t` seconds after stimulus onset.
///
/// Peak around 5 s, undershoot around 15 s, essentially zero past 30 s —
/// the SPM canonical shape (peak gamma k=6, undershoot k=16, ratio 1/6).
pub fn hrf(t: f64) -> f64 {
    if t <= 0.0 {
        return 0.0;
    }
    // Gamma pdf with shape k, scale 1: t^(k-1) e^-t / (k-1)!
    fn gamma_pdf(t: f64, k: f64) -> f64 {
        // ln Γ(k) via Stirling series is overkill for the two fixed k used
        // here; use libm's ln_gamma equivalent through the recurrence-free
        // formula with k integer.
        let mut log_fact = 0.0;
        let mut i = 1.0;
        while i < k {
            log_fact += i.ln();
            i += 1.0;
        }
        ((k - 1.0) * t.ln() - t - log_fact).exp()
    }
    gamma_pdf(t, 6.0) - gamma_pdf(t, 16.0) / 6.0
}

/// Samples the HRF kernel at repetition time `tr` seconds for `len` points.
pub fn hrf_kernel(tr: f64, len: usize) -> Result<Vec<f64>> {
    if tr <= 0.0 || !tr.is_finite() {
        return Err(FmriError::InvalidParameter {
            name: "tr",
            reason: "repetition time must be positive and finite",
        });
    }
    Ok((0..len).map(|i| hrf(i as f64 * tr)).collect())
}

/// A boxcar block design: alternating off/on blocks, starting with `off`.
///
/// `block_len` is in samples; the output has `n` samples of 0.0/1.0.
pub fn block_design(n: usize, block_len: usize) -> Result<Vec<f64>> {
    if block_len == 0 {
        return Err(FmriError::InvalidParameter {
            name: "block_len",
            reason: "block length must be at least 1 sample",
        });
    }
    Ok((0..n)
        .map(|i| if (i / block_len) % 2 == 1 { 1.0 } else { 0.0 })
        .collect())
}

/// Linear convolution truncated to the length of `signal` (same-size "causal"
/// convolution, as used for stimulus → BOLD prediction).
pub fn convolve(signal: &[f64], kernel: &[f64]) -> Vec<f64> {
    let n = signal.len();
    let mut out = vec![0.0; n];
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        let kmax = kernel.len().min(i + 1);
        for k in 0..kmax {
            acc += kernel[k] * signal[i - k];
        }
        *o = acc;
    }
    out
}

/// Band-limited resting-state fluctuation: a sum of sinusoids with random
/// phase and frequencies drawn uniformly from `[f_lo, f_hi]` Hz, normalized
/// to unit variance. This mimics the low-frequency haemodynamic fluctuations
/// (0.008–0.1 Hz) that carry resting-state connectivity.
pub fn resting_fluctuation(
    n: usize,
    tr: f64,
    f_lo: f64,
    f_hi: f64,
    n_components: usize,
    rng: &mut Rng64,
) -> Result<Vec<f64>> {
    if tr <= 0.0 || f_lo < 0.0 || f_hi <= f_lo {
        return Err(FmriError::InvalidParameter {
            name: "band",
            reason: "need tr > 0 and 0 <= f_lo < f_hi",
        });
    }
    if n_components == 0 {
        return Err(FmriError::InvalidParameter {
            name: "n_components",
            reason: "need at least one component",
        });
    }
    let mut out = vec![0.0; n];
    for _ in 0..n_components {
        let f = rng.uniform_range(f_lo, f_hi);
        let phase = rng.uniform_range(0.0, std::f64::consts::TAU);
        let amp = rng.uniform_range(0.5, 1.0);
        for (i, o) in out.iter_mut().enumerate() {
            *o += amp * (std::f64::consts::TAU * f * (i as f64) * tr + phase).sin();
        }
    }
    // Normalize to unit variance so callers control amplitude explicitly.
    let mean = out.iter().sum::<f64>() / n.max(1) as f64;
    let var = out.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n.max(1) as f64;
    if var > 0.0 {
        let inv = 1.0 / var.sqrt();
        for v in &mut out {
            *v = (*v - mean) * inv;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hrf_is_causal() {
        assert_eq!(hrf(0.0), 0.0);
        assert_eq!(hrf(-1.0), 0.0);
    }

    #[test]
    fn hrf_peaks_near_five_seconds() {
        let peak_t = (0..300)
            .map(|i| i as f64 * 0.1)
            .max_by(|a, b| hrf(*a).partial_cmp(&hrf(*b)).unwrap())
            .unwrap();
        assert!((4.0..6.5).contains(&peak_t), "peak at {peak_t}");
    }

    #[test]
    fn hrf_has_undershoot() {
        // Negative dip somewhere in 10–20 s.
        let min = (100..200)
            .map(|i| hrf(i as f64 * 0.1))
            .fold(f64::INFINITY, f64::min);
        assert!(min < 0.0);
    }

    #[test]
    fn hrf_decays_to_zero() {
        assert!(hrf(40.0).abs() < 1e-4);
    }

    #[test]
    fn hrf_kernel_validates_tr() {
        assert!(hrf_kernel(0.0, 10).is_err());
        assert!(hrf_kernel(-1.0, 10).is_err());
        let k = hrf_kernel(0.72, 32).unwrap();
        assert_eq!(k.len(), 32);
        assert_eq!(k[0], 0.0);
    }

    #[test]
    fn block_design_alternates() {
        let d = block_design(12, 3).unwrap();
        assert_eq!(d, vec![0., 0., 0., 1., 1., 1., 0., 0., 0., 1., 1., 1.]);
        assert!(block_design(5, 0).is_err());
    }

    #[test]
    fn convolve_with_delta_is_identity() {
        let s = [1.0, 2.0, 3.0, 4.0];
        let out = convolve(&s, &[1.0]);
        assert_eq!(out, s.to_vec());
    }

    #[test]
    fn convolve_with_shifted_delta_shifts() {
        let s = [1.0, 2.0, 3.0, 4.0];
        let out = convolve(&s, &[0.0, 1.0]);
        assert_eq!(out, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn convolve_is_linear() {
        let a = [1.0, -2.0, 0.5, 3.0, -1.0];
        let b = [0.3, 0.7, -0.2, 1.1, 0.0];
        let k = [0.5, 0.25, 0.125];
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let left = convolve(&sum, &k);
        let ca = convolve(&a, &k);
        let cb = convolve(&b, &k);
        for i in 0..5 {
            assert!((left[i] - (ca[i] + cb[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn resting_fluctuation_unit_variance() {
        let mut rng = Rng64::new(9);
        let s = resting_fluctuation(500, 0.72, 0.008, 0.1, 12, &mut rng).unwrap();
        let mean = s.iter().sum::<f64>() / 500.0;
        let var = s.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / 500.0;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn resting_fluctuation_validates() {
        let mut rng = Rng64::new(1);
        assert!(resting_fluctuation(10, 0.0, 0.01, 0.1, 3, &mut rng).is_err());
        assert!(resting_fluctuation(10, 1.0, 0.1, 0.01, 3, &mut rng).is_err());
        assert!(resting_fluctuation(10, 1.0, 0.01, 0.1, 0, &mut rng).is_err());
    }

    #[test]
    fn resting_fluctuation_deterministic() {
        let a = resting_fluctuation(64, 0.72, 0.01, 0.1, 5, &mut Rng64::new(4)).unwrap();
        let b = resting_fluctuation(64, 0.72, 0.01, 0.1, 5, &mut Rng64::new(4)).unwrap();
        assert_eq!(a, b);
    }
}
