//! Property tests for connectome construction and bookkeeping.

use neurodeanon_connectome::{Connectome, EdgeIndex, GroupMatrix};
use neurodeanon_linalg::Matrix;
use neurodeanon_testkit::gen::{matrix_in, u64_in, usize_in, vec_of, Gen};
use neurodeanon_testkit::{forall, tk_assert, tk_assert_eq, Config};

fn cfg() -> Config {
    Config::cases(48)
}

fn region_ts(regions: usize, t: usize) -> impl Gen<Value = Matrix> {
    matrix_in(regions, t, -5.0, 5.0)
}

#[test]
fn edge_index_bijection() {
    forall!(cfg(), (n in usize_in(2..40)) => {
        let idx = EdgeIndex::new(n).unwrap();
        for f in 0..idx.n_features() {
            let (i, j) = idx.edge_of(f).unwrap();
            tk_assert!(i < j && j < n);
            tk_assert_eq!(idx.feature_of(i, j).unwrap(), f);
        }
    });
}

#[test]
fn vectorize_devectorize_roundtrip() {
    forall!(cfg(), (ts in region_ts(5, 24)) => {
        let c = Connectome::from_region_ts(&ts).unwrap();
        let v = c.vectorize();
        let back = Connectome::from_vectorized(&v, 5).unwrap();
        let diff = c.as_matrix().sub(back.as_matrix()).unwrap().max_abs();
        tk_assert!(diff < 1e-12);
    });
}

#[test]
fn connectome_entries_valid() {
    forall!(cfg(), (ts in region_ts(4, 16)) => {
        let c = Connectome::from_region_ts(&ts).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let w = c.edge_weight(i, j);
                tk_assert!((-1.0..=1.0).contains(&w));
                tk_assert!((w - c.edge_weight(j, i)).abs() < 1e-12);
            }
        }
    });
}

#[test]
fn group_matrix_columns_match_sources() {
    forall!(cfg(), (seed in u64_in(0..1000)) => {
        // Deterministic pseudo-random connectomes from the seed.
        let mk = |s: u64| {
            let ts = Matrix::from_fn(4, 20, |r, c| {
                (((s + 1) as f64) * (r as f64 + 1.0) * (c as f64 * 0.37)).sin()
            });
            Connectome::from_region_ts(&ts).unwrap()
        };
        let cs = [mk(seed), mk(seed + 1), mk(seed + 2)];
        let ids: Vec<String> = (0..3).map(|i| format!("s{i}")).collect();
        let g = GroupMatrix::from_connectomes(&cs, &ids).unwrap();
        for (col, c) in cs.iter().enumerate() {
            tk_assert_eq!(g.subject_features(col), c.vectorize());
        }
    });
}

#[test]
fn select_features_then_subjects_commutes() {
    forall!(cfg(), (feat in vec_of(usize_in(0..6), 1..4),
                    subj in vec_of(usize_in(0..3), 1..3)) => {
        let mk = |s: u64| {
            let ts = Matrix::from_fn(4, 20, |r, c| {
                ((s + 2) as f64 * (r as f64 + 0.5) * (c as f64 * 0.21)).cos()
            });
            Connectome::from_region_ts(&ts).unwrap()
        };
        let cs = [mk(0), mk(1), mk(2)];
        let ids: Vec<String> = (0..3).map(|i| format!("s{i}")).collect();
        let g = GroupMatrix::from_connectomes(&cs, &ids).unwrap();
        let a = g.select_features(&feat).unwrap().select_subjects(&subj).unwrap();
        let b = g.select_subjects(&subj).unwrap().select_features(&feat).unwrap();
        tk_assert_eq!(a.as_matrix().as_slice(), b.as_matrix().as_slice());
        tk_assert_eq!(a.subject_ids(), b.subject_ids());
    });
}

#[test]
fn to_points_is_transpose() {
    forall!(cfg(), (seed in u64_in(0..100)) => {
        let mk = |s: u64| {
            let ts = Matrix::from_fn(3, 15, |r, c| ((s + 1) as f64 * (r * 5 + c) as f64 * 0.11).sin());
            Connectome::from_region_ts(&ts).unwrap()
        };
        let cs = [mk(seed), mk(seed + 7)];
        let ids: Vec<String> = (0..2).map(|i| format!("s{i}")).collect();
        let g = GroupMatrix::from_connectomes(&cs, &ids).unwrap();
        let p = g.to_points();
        for s in 0..2 {
            for f in 0..3 {
                tk_assert_eq!(p[(s, f)], g.as_matrix()[(f, s)]);
            }
        }
    });
}
