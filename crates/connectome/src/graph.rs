//! Weighted-graph view of a connectome.
//!
//! §3.1.1: "this matrix can also be interpreted as a weighted complete
//! graph, where nodes correspond to regions and edge weights correspond to
//! correlation in neuronal activity." These utilities expose the graph
//! quantities connectomics studies routinely report — node strength,
//! thresholded density, hub detection — so downstream users of the library
//! can run standard analyses on the same objects the attack consumes.

use crate::error::ConnectomeError;
use crate::matrix::Connectome;
use crate::Result;

/// Node strength: the sum of absolute edge weights incident to each region
/// (the weighted-graph analogue of degree).
pub fn node_strength(connectome: &Connectome) -> Vec<f64> {
    let n = connectome.n_regions();
    let mut strength = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                strength[i] += connectome.edge_weight(i, j).abs();
            }
        }
    }
    strength
}

/// Edge density after absolute thresholding: the fraction of region pairs
/// whose |correlation| is at least `threshold`.
pub fn edge_density(connectome: &Connectome, threshold: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&threshold) {
        return Err(ConnectomeError::FeatureOutOfRange {
            index: 0,
            n_features: 0,
        });
    }
    let n = connectome.n_regions();
    let mut kept = 0usize;
    let total = n * (n - 1) / 2;
    for i in 0..n {
        for j in (i + 1)..n {
            if connectome.edge_weight(i, j).abs() >= threshold {
                kept += 1;
            }
        }
    }
    Ok(kept as f64 / total as f64)
}

/// The `k` regions with the highest node strength ("hubs"), strongest
/// first. `k` is clamped to the region count.
pub fn hubs(connectome: &Connectome, k: usize) -> Vec<usize> {
    let strength = node_strength(connectome);
    let mut order = neurodeanon_linalg::vector::argsort_desc(&strength);
    order.truncate(k.min(order.len()));
    order
}

/// The `k` strongest edges by |weight|, as `(i, j, weight)` triples,
/// strongest first.
pub fn strongest_edges(connectome: &Connectome, k: usize) -> Vec<(usize, usize, f64)> {
    let n = connectome.n_regions();
    let mut edges: Vec<(usize, usize, f64)> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((i, j, connectome.edge_weight(i, j)));
        }
    }
    edges.sort_by(|a, b| {
        b.2.abs()
            .partial_cmp(&a.2.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    edges.truncate(k.min(edges.len()));
    edges
}

/// Mean absolute off-diagonal correlation — a single-number summary of
/// global functional connectivity strength.
pub fn mean_connectivity(connectome: &Connectome) -> f64 {
    let n = connectome.n_regions();
    let total = (n * (n - 1) / 2) as f64;
    let mut acc = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            acc += connectome.edge_weight(i, j).abs();
        }
    }
    acc / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurodeanon_linalg::Matrix;

    /// A 4-region connectome: regions 0,1 strongly coupled; 2,3 weak.
    fn sample() -> Connectome {
        let corr = Matrix::from_rows(&[
            &[1.0, 0.9, 0.1, 0.2],
            &[0.9, 1.0, 0.0, -0.1],
            &[0.1, 0.0, 1.0, 0.3],
            &[0.2, -0.1, 0.3, 1.0],
        ])
        .unwrap();
        Connectome::from_correlation(corr).unwrap()
    }

    #[test]
    fn node_strength_sums_incident_weights() {
        let s = node_strength(&sample());
        assert!((s[0] - (0.9 + 0.1 + 0.2)).abs() < 1e-12);
        assert!((s[1] - (0.9 + 0.0 + 0.1)).abs() < 1e-12);
        // Region 0 is the strongest hub.
        assert_eq!(hubs(&sample(), 1), vec![0]);
    }

    #[test]
    fn edge_density_monotone_in_threshold() {
        let c = sample();
        let d0 = edge_density(&c, 0.0).unwrap();
        let d2 = edge_density(&c, 0.2).unwrap();
        let d95 = edge_density(&c, 0.95).unwrap();
        assert_eq!(d0, 1.0);
        assert!(d2 < d0 && d2 > d95);
        assert_eq!(d95, 0.0);
        assert!(edge_density(&c, 1.5).is_err());
    }

    #[test]
    fn strongest_edges_ordering() {
        let edges = strongest_edges(&sample(), 3);
        assert_eq!((edges[0].0, edges[0].1), (0, 1));
        assert!((edges[0].2 - 0.9).abs() < 1e-12);
        assert!(edges.windows(2).all(|w| w[0].2.abs() >= w[1].2.abs()));
    }

    #[test]
    fn mean_connectivity_value() {
        let m = mean_connectivity(&sample());
        let expect = (0.9 + 0.1 + 0.2 + 0.0 + 0.1 + 0.3) / 6.0;
        assert!((m - expect).abs() < 1e-12);
    }

    #[test]
    fn hubs_clamps_k() {
        assert_eq!(hubs(&sample(), 10).len(), 4);
        assert_eq!(strongest_edges(&sample(), 100).len(), 6);
    }
}
