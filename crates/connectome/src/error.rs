//! Connectome error type.

use std::fmt;

/// Errors from connectome construction and group-matrix assembly.
#[derive(Debug, Clone, PartialEq)]
pub enum ConnectomeError {
    /// The connectome needs at least two regions to have any edge features.
    TooFewRegions {
        /// Number of regions provided.
        got: usize,
    },
    /// Connectomes in a group must share the same region count.
    RegionCountMismatch {
        /// Region count of the first connectome.
        expected: usize,
        /// Region count of the offending connectome.
        got: usize,
        /// Index of the offending connectome in the input.
        at: usize,
    },
    /// A group matrix needs at least one subject.
    EmptyGroup,
    /// A feature index exceeded the number of pair features.
    FeatureOutOfRange {
        /// Offending feature index.
        index: usize,
        /// Number of features available.
        n_features: usize,
    },
    /// Error propagated from the linear-algebra layer.
    Linalg(neurodeanon_linalg::LinalgError),
    /// An operating-system I/O failure while reading or writing a file.
    ///
    /// Carries the rendered `std::io::Error` plus what was being done, as
    /// strings so the error stays `Clone + PartialEq`.
    Io {
        /// What the I/O layer was doing ("open /path/x.csv").
        context: String,
        /// Rendered underlying error.
        reason: String,
    },
    /// A structurally malformed line in a group-matrix CSV file.
    Csv {
        /// 1-based line number in the file.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for ConnectomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectomeError::TooFewRegions { got } => {
                write!(f, "connectome needs >= 2 regions, got {got}")
            }
            ConnectomeError::RegionCountMismatch { expected, got, at } => {
                write!(f, "connectome {at} has {got} regions, expected {expected}")
            }
            ConnectomeError::EmptyGroup => write!(f, "group matrix needs at least one subject"),
            ConnectomeError::FeatureOutOfRange { index, n_features } => {
                write!(f, "feature {index} out of range ({n_features} features)")
            }
            ConnectomeError::Linalg(e) => write!(f, "linalg error: {e}"),
            ConnectomeError::Io { context, reason } => {
                write!(f, "io error while trying to {context}: {reason}")
            }
            ConnectomeError::Csv { line, reason } => {
                write!(f, "malformed csv line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ConnectomeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConnectomeError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<neurodeanon_linalg::LinalgError> for ConnectomeError {
    fn from(e: neurodeanon_linalg::LinalgError) -> Self {
        ConnectomeError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ConnectomeError::TooFewRegions { got: 1 }
            .to_string()
            .contains('1'));
        assert!(ConnectomeError::EmptyGroup.to_string().contains("subject"));
        let e = ConnectomeError::RegionCountMismatch {
            expected: 360,
            got: 116,
            at: 3,
        };
        assert!(e.to_string().contains("360"));
    }
}
