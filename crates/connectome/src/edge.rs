//! Upper-triangle edge linearization.
//!
//! "The symmetry of the correlation matrix allows us to vectorize only the
//! top (or bottom) triangle" (§3.1.1). [`EdgeIndex`] fixes one canonical
//! order — row-major over the strict upper triangle: `(0,1), (0,2), …,
//! (0,n−1), (1,2), …` — and provides O(1) maps in both directions. Every
//! crate that talks about "feature k of the group matrix" uses this object,
//! so a selected leverage feature can always be traced back to its region
//! pair (the paper's defense discussion depends on that localization).

use crate::error::ConnectomeError;
use crate::Result;

/// Bidirectional map between region pairs `(i, j), i < j` and flat feature
/// indices `0..n(n−1)/2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeIndex {
    n_regions: usize,
    /// `row_start[i]` = flat index of edge `(i, i+1)`.
    row_start: Vec<usize>,
}

impl EdgeIndex {
    /// Creates the edge index for `n_regions ≥ 2` regions.
    pub fn new(n_regions: usize) -> Result<Self> {
        if n_regions < 2 {
            return Err(ConnectomeError::TooFewRegions { got: n_regions });
        }
        let mut row_start = Vec::with_capacity(n_regions);
        let mut acc = 0usize;
        for i in 0..n_regions {
            row_start.push(acc);
            acc += n_regions - 1 - i;
        }
        Ok(EdgeIndex {
            n_regions,
            row_start,
        })
    }

    /// Number of regions.
    pub fn n_regions(&self) -> usize {
        self.n_regions
    }

    /// Number of pair features `n(n−1)/2`.
    pub fn n_features(&self) -> usize {
        self.n_regions * (self.n_regions - 1) / 2
    }

    /// Flat feature index of the edge between regions `a` and `b` (order
    /// irrelevant; `a == b` or out-of-range is an error).
    pub fn feature_of(&self, a: usize, b: usize) -> Result<usize> {
        if a == b || a >= self.n_regions || b >= self.n_regions {
            return Err(ConnectomeError::FeatureOutOfRange {
                index: a.max(b),
                n_features: self.n_features(),
            });
        }
        let (i, j) = if a < b { (a, b) } else { (b, a) };
        Ok(self.row_start[i] + (j - i - 1))
    }

    /// Region pair `(i, j), i < j` of a flat feature index.
    pub fn edge_of(&self, feature: usize) -> Result<(usize, usize)> {
        if feature >= self.n_features() {
            return Err(ConnectomeError::FeatureOutOfRange {
                index: feature,
                n_features: self.n_features(),
            });
        }
        // Binary search the row whose range contains `feature`.
        let i = match self.row_start.binary_search(&feature) {
            Ok(exact) => exact,
            Err(ins) => ins - 1,
        };
        let j = i + 1 + (feature - self.row_start[i]);
        Ok((i, j))
    }

    /// Iterates all edges in feature order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n_regions).flat_map(move |i| ((i + 1)..self.n_regions).map(move |j| (i, j)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_counts_match_paper() {
        assert_eq!(EdgeIndex::new(360).unwrap().n_features(), 64_620);
        assert_eq!(EdgeIndex::new(116).unwrap().n_features(), 6_670);
    }

    #[test]
    fn rejects_tiny() {
        assert!(EdgeIndex::new(0).is_err());
        assert!(EdgeIndex::new(1).is_err());
        assert!(EdgeIndex::new(2).is_ok());
    }

    #[test]
    fn roundtrip_all_edges_small() {
        let idx = EdgeIndex::new(7).unwrap();
        let mut seen = vec![false; idx.n_features()];
        for i in 0..7 {
            for j in (i + 1)..7 {
                let f = idx.feature_of(i, j).unwrap();
                assert!(!seen[f], "duplicate feature {f}");
                seen[f] = true;
                assert_eq!(idx.edge_of(f).unwrap(), (i, j));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn order_is_row_major_upper() {
        let idx = EdgeIndex::new(4).unwrap();
        let order: Vec<(usize, usize)> = idx.iter().collect();
        assert_eq!(order, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        for (f, &(i, j)) in order.iter().enumerate() {
            assert_eq!(idx.feature_of(i, j).unwrap(), f);
        }
    }

    #[test]
    fn symmetric_lookup() {
        let idx = EdgeIndex::new(10).unwrap();
        assert_eq!(idx.feature_of(3, 7).unwrap(), idx.feature_of(7, 3).unwrap());
    }

    #[test]
    fn rejects_diagonal_and_out_of_range() {
        let idx = EdgeIndex::new(5).unwrap();
        assert!(idx.feature_of(2, 2).is_err());
        assert!(idx.feature_of(0, 5).is_err());
        assert!(idx.edge_of(10).is_err());
        assert!(idx.edge_of(9).is_ok());
    }

    #[test]
    fn edge_of_first_and_last() {
        let idx = EdgeIndex::new(360).unwrap();
        assert_eq!(idx.edge_of(0).unwrap(), (0, 1));
        assert_eq!(idx.edge_of(64_619).unwrap(), (358, 359));
    }
}
