#![warn(missing_docs)]

//! # neurodeanon-connectome
//!
//! Functional connectome construction (§3.1.1 of the paper): a cleaned
//! `region × time` matrix becomes a `region × region` Pearson correlation
//! ("co-firing") matrix; its upper triangle is vectorized into a feature
//! vector of `n(n−1)/2` region-pair correlations; feature vectors from a
//! cohort are stacked column-wise into a *group matrix* (features ×
//! subjects) — the object the leverage-score attack operates on.
//!
//! * [`Connectome`] — one subject-session correlation matrix, with
//!   edge ↔ feature-index bookkeeping.
//! * [`GroupMatrix`] — features × subjects with subject labels.
//! * [`EdgeIndex`] — the upper-triangle linearization shared by both.
//! * [`graph`] — the weighted-graph quantities (node strength, density,
//!   hubs) the paper's graph interpretation of connectomes supports.

pub mod edge;
pub mod error;
pub mod graph;
pub mod group;
pub mod io;
pub mod matrix;

pub use edge::EdgeIndex;
pub use error::ConnectomeError;
pub use group::GroupMatrix;
pub use matrix::Connectome;

/// Result alias for connectome operations.
pub type Result<T> = std::result::Result<T, ConnectomeError>;
