//! Single-subject functional connectome.

use crate::edge::EdgeIndex;
use crate::error::ConnectomeError;
use crate::Result;
use neurodeanon_linalg::stats::correlation_matrix;
use neurodeanon_linalg::Matrix;

/// One subject-session functional connectome: a symmetric `region × region`
/// Pearson correlation matrix, interpretable as a weighted complete graph
/// whose nodes are regions and whose edge weights are co-activation
/// correlations (§3.1.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Connectome {
    corr: Matrix,
}

impl Connectome {
    /// Builds a connectome from a cleaned `region × time` matrix.
    pub fn from_region_ts(region_ts: &Matrix) -> Result<Self> {
        if region_ts.rows() < 2 {
            return Err(ConnectomeError::TooFewRegions {
                got: region_ts.rows(),
            });
        }
        let corr = correlation_matrix(region_ts)?;
        Ok(Connectome { corr })
    }

    /// Wraps an existing correlation matrix (must be square, ≥ 2 regions;
    /// symmetry is the caller's responsibility and is asserted in debug).
    pub fn from_correlation(corr: Matrix) -> Result<Self> {
        if corr.rows() != corr.cols() || corr.rows() < 2 {
            return Err(ConnectomeError::TooFewRegions { got: corr.rows() });
        }
        debug_assert!({
            let n = corr.rows();
            (0..n).all(|i| (0..n).all(|j| (corr[(i, j)] - corr[(j, i)]).abs() < 1e-9))
        });
        Ok(Connectome { corr })
    }

    /// Number of regions.
    pub fn n_regions(&self) -> usize {
        self.corr.rows()
    }

    /// Correlation between regions `i` and `j`.
    pub fn edge_weight(&self, i: usize, j: usize) -> f64 {
        self.corr[(i, j)]
    }

    /// The full correlation matrix.
    pub fn as_matrix(&self) -> &Matrix {
        &self.corr
    }

    /// Vectorizes the strict upper triangle in [`EdgeIndex`] order into a
    /// feature vector of length `n(n−1)/2`.
    pub fn vectorize(&self) -> Vec<f64> {
        let n = self.n_regions();
        let mut out = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                out.push(self.corr[(i, j)]);
            }
        }
        out
    }

    /// Rebuilds a connectome from a vectorized feature vector (unit
    /// diagonal). The inverse of [`Connectome::vectorize`].
    pub fn from_vectorized(features: &[f64], n_regions: usize) -> Result<Self> {
        let idx = EdgeIndex::new(n_regions)?;
        if features.len() != idx.n_features() {
            return Err(ConnectomeError::FeatureOutOfRange {
                index: features.len(),
                n_features: idx.n_features(),
            });
        }
        let mut corr = Matrix::identity(n_regions);
        for (f, &(i, j)) in idx.iter().collect::<Vec<_>>().iter().enumerate() {
            corr[(i, j)] = features[f];
            corr[(j, i)] = features[f];
        }
        Ok(Connectome { corr })
    }

    /// The edge index describing this connectome's vectorization.
    pub fn edge_index(&self) -> Result<EdgeIndex> {
        EdgeIndex::new(self.n_regions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ts() -> Matrix {
        Matrix::from_fn(5, 40, |r, c| {
            ((c as f64 * (0.2 + r as f64 * 0.13)).sin()) + 0.1 * r as f64
        })
    }

    #[test]
    fn from_region_ts_builds_valid_correlation() {
        let c = Connectome::from_region_ts(&sample_ts()).unwrap();
        assert_eq!(c.n_regions(), 5);
        for i in 0..5 {
            assert!((c.edge_weight(i, i) - 1.0).abs() < 1e-12);
            for j in 0..5 {
                assert!((-1.0..=1.0).contains(&c.edge_weight(i, j)));
                assert_eq!(c.edge_weight(i, j), c.edge_weight(j, i));
            }
        }
    }

    #[test]
    fn vectorize_roundtrip() {
        let c = Connectome::from_region_ts(&sample_ts()).unwrap();
        let v = c.vectorize();
        assert_eq!(v.len(), 10);
        let back = Connectome::from_vectorized(&v, 5).unwrap();
        assert!(c.as_matrix().sub(back.as_matrix()).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn vectorize_order_matches_edge_index() {
        let c = Connectome::from_region_ts(&sample_ts()).unwrap();
        let v = c.vectorize();
        let idx = c.edge_index().unwrap();
        for (f, (i, j)) in idx.iter().enumerate() {
            assert_eq!(v[f], c.edge_weight(i, j));
        }
    }

    #[test]
    fn from_vectorized_rejects_wrong_length() {
        assert!(Connectome::from_vectorized(&[0.0; 9], 5).is_err());
    }

    #[test]
    fn rejects_single_region() {
        let ts = Matrix::zeros(1, 10);
        assert!(Connectome::from_region_ts(&ts).is_err());
        assert!(Connectome::from_correlation(Matrix::identity(1)).is_err());
        assert!(Connectome::from_correlation(Matrix::zeros(2, 3)).is_err());
    }
}
