//! Group matrices: vectorized connectomes stacked column-wise.
//!
//! "We take all of the feature vectors corresponding to images in our
//! de-anonymized set and organize them into a matrix. Each column of this
//! matrix corresponds to a subject, and each row corresponds to a feature"
//! (§3.1). For the HCP setting this is the 64,620 × 100 matrix `A` of
//! §3.1.2.

use crate::error::ConnectomeError;
use crate::matrix::Connectome;
use crate::Result;
use neurodeanon_linalg::Matrix;

/// A features × subjects matrix with subject labels.
#[derive(Debug, Clone)]
pub struct GroupMatrix {
    data: Matrix,
    subject_ids: Vec<String>,
    n_regions: usize,
}

impl GroupMatrix {
    /// Stacks vectorized connectomes (one per subject) into a group matrix.
    ///
    /// All connectomes must share a region count; `subject_ids` must match
    /// the connectome count (pass session-qualified ids like `"sub012/LR"`).
    pub fn from_connectomes(connectomes: &[Connectome], subject_ids: &[String]) -> Result<Self> {
        if connectomes.is_empty() {
            return Err(ConnectomeError::EmptyGroup);
        }
        if subject_ids.len() != connectomes.len() {
            return Err(ConnectomeError::RegionCountMismatch {
                expected: connectomes.len(),
                got: subject_ids.len(),
                at: 0,
            });
        }
        let n_regions = connectomes[0].n_regions();
        for (at, c) in connectomes.iter().enumerate() {
            if c.n_regions() != n_regions {
                return Err(ConnectomeError::RegionCountMismatch {
                    expected: n_regions,
                    got: c.n_regions(),
                    at,
                });
            }
        }
        let n_features = n_regions * (n_regions - 1) / 2;
        let mut data = Matrix::zeros(n_features, connectomes.len());
        for (s, c) in connectomes.iter().enumerate() {
            let v = c.vectorize();
            for (f, &val) in v.iter().enumerate() {
                data[(f, s)] = val;
            }
        }
        Ok(GroupMatrix {
            data,
            subject_ids: subject_ids.to_vec(),
            n_regions,
        })
    }

    /// Builds directly from a features × subjects matrix (used by dataset
    /// generators that synthesize feature vectors without full time series).
    pub fn from_matrix(data: Matrix, subject_ids: Vec<String>, n_regions: usize) -> Result<Self> {
        if data.cols() == 0 || data.rows() == 0 {
            return Err(ConnectomeError::EmptyGroup);
        }
        if subject_ids.len() != data.cols() {
            return Err(ConnectomeError::RegionCountMismatch {
                expected: data.cols(),
                got: subject_ids.len(),
                at: 0,
            });
        }
        Ok(GroupMatrix {
            data,
            subject_ids,
            n_regions,
        })
    }

    /// Number of features (rows).
    pub fn n_features(&self) -> usize {
        self.data.rows()
    }

    /// Number of subjects (columns).
    pub fn n_subjects(&self) -> usize {
        self.data.cols()
    }

    /// Region count of the underlying connectomes.
    pub fn n_regions(&self) -> usize {
        self.n_regions
    }

    /// Subject labels, column order.
    pub fn subject_ids(&self) -> &[String] {
        &self.subject_ids
    }

    /// The features × subjects matrix.
    pub fn as_matrix(&self) -> &Matrix {
        &self.data
    }

    /// Mutable access to the features × subjects matrix.
    ///
    /// Shape is fixed by construction; this exists so in-place transforms
    /// (defenses, fault injection, imputation) can edit values without
    /// rebuilding the group.
    pub fn as_matrix_mut(&mut self) -> &mut Matrix {
        &mut self.data
    }

    /// One subject's feature vector (a column).
    pub fn subject_features(&self, s: usize) -> Vec<f64> {
        self.data.col(s)
    }

    /// Restricts to the given feature rows (the attack's "principal
    /// features subspace" step), preserving subject labels.
    pub fn select_features(&self, features: &[usize]) -> Result<GroupMatrix> {
        let data = self.data.select_rows(features)?;
        Ok(GroupMatrix {
            data,
            subject_ids: self.subject_ids.clone(),
            n_regions: self.n_regions,
        })
    }

    /// Restricts to the given subject columns.
    pub fn select_subjects(&self, subjects: &[usize]) -> Result<GroupMatrix> {
        let data = self.data.select_cols(subjects)?;
        let ids = subjects
            .iter()
            .map(|&s| {
                self.subject_ids
                    .get(s)
                    .cloned()
                    .ok_or(ConnectomeError::FeatureOutOfRange {
                        index: s,
                        n_features: self.subject_ids.len(),
                    })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(GroupMatrix {
            data,
            subject_ids: ids,
            n_regions: self.n_regions,
        })
    }

    /// Subjects-as-rows matrix (`subjects × features`) — the point cloud
    /// layout t-SNE and the SVR regressor consume.
    pub fn to_points(&self) -> Matrix {
        self.data.transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connectome(seed: usize) -> Connectome {
        let ts = Matrix::from_fn(4, 30, |r, c| {
            ((c as f64 * (0.2 + r as f64 * 0.1) + seed as f64).sin()) * 2.0
        });
        Connectome::from_region_ts(&ts).unwrap()
    }

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("sub{i:03}")).collect()
    }

    #[test]
    fn stacks_columns_per_subject() {
        let cs: Vec<Connectome> = (0..3).map(connectome).collect();
        let g = GroupMatrix::from_connectomes(&cs, &ids(3)).unwrap();
        assert_eq!(g.n_features(), 6);
        assert_eq!(g.n_subjects(), 3);
        assert_eq!(g.n_regions(), 4);
        for (s, c) in cs.iter().enumerate() {
            assert_eq!(g.subject_features(s), c.vectorize());
        }
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(matches!(
            GroupMatrix::from_connectomes(&[], &[]),
            Err(ConnectomeError::EmptyGroup)
        ));
        let cs: Vec<Connectome> = (0..2).map(connectome).collect();
        assert!(GroupMatrix::from_connectomes(&cs, &ids(3)).is_err());
    }

    #[test]
    fn rejects_heterogeneous_region_counts() {
        let a = connectome(0);
        let ts = Matrix::from_fn(5, 30, |r, c| ((c + r) as f64).sin());
        let b = Connectome::from_region_ts(&ts).unwrap();
        let e = GroupMatrix::from_connectomes(&[a, b], &ids(2)).unwrap_err();
        assert!(matches!(
            e,
            ConnectomeError::RegionCountMismatch { at: 1, .. }
        ));
    }

    #[test]
    fn select_features_keeps_subjects() {
        let cs: Vec<Connectome> = (0..3).map(connectome).collect();
        let g = GroupMatrix::from_connectomes(&cs, &ids(3)).unwrap();
        let r = g.select_features(&[5, 0, 2]).unwrap();
        assert_eq!(r.n_features(), 3);
        assert_eq!(r.n_subjects(), 3);
        assert_eq!(r.as_matrix()[(0, 1)], g.as_matrix()[(5, 1)]);
        assert!(g.select_features(&[6]).is_err());
    }

    #[test]
    fn select_subjects_keeps_labels() {
        let cs: Vec<Connectome> = (0..4).map(connectome).collect();
        let g = GroupMatrix::from_connectomes(&cs, &ids(4)).unwrap();
        let r = g.select_subjects(&[3, 1]).unwrap();
        assert_eq!(
            r.subject_ids(),
            &["sub003".to_string(), "sub001".to_string()]
        );
        assert_eq!(r.subject_features(0), g.subject_features(3));
    }

    #[test]
    fn to_points_transposes() {
        let cs: Vec<Connectome> = (0..2).map(connectome).collect();
        let g = GroupMatrix::from_connectomes(&cs, &ids(2)).unwrap();
        let p = g.to_points();
        assert_eq!(p.shape(), (2, 6));
        assert_eq!(p.row(0), g.subject_features(0).as_slice());
    }

    #[test]
    fn from_matrix_validates() {
        let m = Matrix::zeros(10, 3);
        assert!(GroupMatrix::from_matrix(m.clone(), ids(3), 5).is_ok());
        assert!(GroupMatrix::from_matrix(m, ids(2), 5).is_err());
        assert!(GroupMatrix::from_matrix(Matrix::zeros(0, 0), vec![], 5).is_err());
    }
}
