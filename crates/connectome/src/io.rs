//! CSV import/export for group matrices.
//!
//! The attack is dataset-agnostic: anyone with vectorized connectomes from
//! *real* fMRI data (e.g. computed by an existing neuroimaging pipeline)
//! can round-trip them through this format and run the attack CLI on them.
//!
//! Format: first line `# regions=<n>`, second line a header of
//! comma-separated subject ids, then one line per feature with
//! comma-separated values (one column per subject).

use crate::error::ConnectomeError;
use crate::group::GroupMatrix;
use neurodeanon_linalg::Matrix;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes a group matrix to `path` in the documented CSV format.
pub fn write_group_csv(group: &GroupMatrix, path: &Path) -> std::io::Result<()> {
    let _span = neurodeanon_obs::span("io.write_csv");
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# regions={}", group.n_regions())?;
    writeln!(w, "{}", group.subject_ids().join(","))?;
    let m = group.as_matrix();
    for f in 0..m.rows() {
        let row: Vec<String> = m.row(f).iter().map(|v| format!("{v}")).collect();
        writeln!(w, "{}", row.join(","))?;
    }
    w.flush()
}

/// Reads a group matrix from the documented CSV format.
///
/// Hardened ingestion for third-party connectomes: every failure mode is a
/// typed [`ConnectomeError`] — OS failures as [`ConnectomeError::Io`],
/// structural problems (missing header, ragged rows, non-numeric cells) as
/// [`ConnectomeError::Csv`] with a 1-based line number — and nothing panics.
/// An *empty* cell parses as NaN (a missing observation for the degraded
/// attack path to mask or impute) rather than an error; any other
/// non-numeric cell is rejected.
pub fn read_group_csv(path: &Path) -> Result<GroupMatrix, ConnectomeError> {
    let _span = neurodeanon_obs::span("io.read_csv");
    let io_err = |context: String, e: std::io::Error| ConnectomeError::Io {
        context,
        reason: e.to_string(),
    };
    let csv = |line: usize, reason: String| ConnectomeError::Csv { line, reason };

    let file = std::fs::File::open(path).map_err(|e| io_err(format!("open {path:?}"), e))?;
    let mut lines = BufReader::new(file).lines().enumerate();
    let mut next_line = |expect: &str| -> Result<(usize, String), ConnectomeError> {
        match lines.next() {
            None => Err(csv(0, format!("truncated file: missing {expect}"))),
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(io_err(format!("read line {} of {path:?}", i + 1), e)),
        }
    };

    let (_, first) = next_line("`# regions=` header")?;
    let n_regions: usize = first
        .strip_prefix("# regions=")
        .ok_or_else(|| csv(1, "missing `# regions=` header".into()))?
        .trim()
        .parse()
        .map_err(|e| csv(1, format!("bad region count: {e}")))?;

    let (_, header) = next_line("subject-id header")?;
    let ids: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    if ids.is_empty() || ids.iter().any(String::is_empty) {
        return Err(csv(2, "empty subject id in header".into()));
    }

    let mut data: Vec<f64> = Vec::new();
    let mut n_features = 0usize;
    for (i, line) in lines {
        let lineno = i + 1;
        let line = line.map_err(|e| io_err(format!("read line {lineno} of {path:?}"), e))?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != ids.len() {
            return Err(csv(
                lineno,
                format!("{} cells, expected {}", cells.len(), ids.len()),
            ));
        }
        for c in cells {
            let c = c.trim();
            // Empty cell = missing observation: NaN, handled downstream by
            // the degraded-input policy.
            let v: f64 = if c.is_empty() {
                f64::NAN
            } else {
                c.parse()
                    .map_err(|e| csv(lineno, format!("bad value `{c}`: {e}")))?
            };
            data.push(v);
        }
        n_features += 1;
    }
    if n_features == 0 {
        return Err(csv(3, "no feature rows".into()));
    }
    let matrix = Matrix::from_vec(n_features, ids.len(), data)?;
    GroupMatrix::from_matrix(matrix, ids, n_regions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Connectome;

    fn sample_group() -> GroupMatrix {
        let mk = |s: u64| {
            let ts = Matrix::from_fn(4, 20, |r, c| {
                ((s + 1) as f64 * (r as f64 + 1.0) * (c as f64 * 0.37)).sin()
            });
            Connectome::from_region_ts(&ts).unwrap()
        };
        let cs = [mk(0), mk(1), mk(2)];
        let ids: Vec<String> = (0..3).map(|i| format!("sub{i:03}/REST/LR")).collect();
        GroupMatrix::from_connectomes(&cs, &ids).unwrap()
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("neurodeanon_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample_group();
        let path = tmpfile("roundtrip.csv");
        write_group_csv(&g, &path).unwrap();
        let back = read_group_csv(&path).unwrap();
        assert_eq!(back.n_regions(), g.n_regions());
        assert_eq!(back.subject_ids(), g.subject_ids());
        assert_eq!(back.n_features(), g.n_features());
        for (a, b) in back
            .as_matrix()
            .as_slice()
            .iter()
            .zip(g.as_matrix().as_slice())
        {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_missing_header() {
        let path = tmpfile("noheader.csv");
        std::fs::write(&path, "a,b\n1,2\n").unwrap();
        let e = read_group_csv(&path).unwrap_err();
        assert!(matches!(e, ConnectomeError::Csv { line: 1, .. }), "{e}");
    }

    #[test]
    fn rejects_ragged_rows_with_line_number() {
        let path = tmpfile("ragged.csv");
        std::fs::write(&path, "# regions=3\na,b\n1,2\n3\n").unwrap();
        let e = read_group_csv(&path).unwrap_err();
        assert!(matches!(e, ConnectomeError::Csv { line: 4, .. }), "{e}");
    }

    #[test]
    fn rejects_non_numeric() {
        let path = tmpfile("nonnum.csv");
        std::fs::write(&path, "# regions=3\na,b\n1,x\n").unwrap();
        let e = read_group_csv(&path).unwrap_err();
        assert!(matches!(e, ConnectomeError::Csv { line: 3, .. }), "{e}");
    }

    #[test]
    fn missing_file_is_typed_io_error() {
        let e = read_group_csv(Path::new("/definitely/not/here.csv")).unwrap_err();
        assert!(matches!(e, ConnectomeError::Io { .. }), "{e}");
        assert!(e.to_string().contains("open"));
    }

    #[test]
    fn empty_cells_parse_as_nan() {
        let path = tmpfile("missing_cells.csv");
        std::fs::write(&path, "# regions=3\na,b,c\n1,,3\n4,5,\n").unwrap();
        let g = read_group_csv(&path).unwrap();
        let m = g.as_matrix();
        assert!(m[(0, 1)].is_nan());
        assert!(m[(1, 2)].is_nan());
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 1)], 5.0);
    }

    #[test]
    fn rejects_empty_file_and_empty_body() {
        let path = tmpfile("empty.csv");
        std::fs::write(&path, "").unwrap();
        assert!(read_group_csv(&path).is_err());
        std::fs::write(&path, "# regions=3\na,b\n").unwrap();
        assert!(read_group_csv(&path).is_err());
    }
}
