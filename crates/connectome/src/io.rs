//! CSV import/export for group matrices.
//!
//! The attack is dataset-agnostic: anyone with vectorized connectomes from
//! *real* fMRI data (e.g. computed by an existing neuroimaging pipeline)
//! can round-trip them through this format and run the attack CLI on them.
//!
//! Format: first line `# regions=<n>`, second line a header of
//! comma-separated subject ids, then one line per feature with
//! comma-separated values (one column per subject).

use crate::error::ConnectomeError;
use crate::group::GroupMatrix;
use neurodeanon_linalg::Matrix;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Writes a group matrix to `path` in the documented CSV format.
pub fn write_group_csv(group: &GroupMatrix, path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# regions={}", group.n_regions())?;
    writeln!(w, "{}", group.subject_ids().join(","))?;
    let m = group.as_matrix();
    for f in 0..m.rows() {
        let row: Vec<String> = m.row(f).iter().map(|v| format!("{v}")).collect();
        writeln!(w, "{}", row.join(","))?;
    }
    w.flush()
}

/// Reads a group matrix from the documented CSV format.
///
/// I/O failures surface as `std::io::Error`; structural problems (missing
/// header, ragged rows, non-numeric cells) as [`ConnectomeError`] wrapped in
/// `io::ErrorKind::InvalidData`.
pub fn read_group_csv(path: &Path) -> std::io::Result<GroupMatrix> {
    let file = std::fs::File::open(path)?;
    let mut lines = BufReader::new(file).lines();

    let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);

    let first = lines.next().ok_or_else(|| invalid("empty file".into()))??;
    let n_regions: usize = first
        .strip_prefix("# regions=")
        .ok_or_else(|| invalid("missing `# regions=` header".into()))?
        .trim()
        .parse()
        .map_err(|e| invalid(format!("bad region count: {e}")))?;

    let header = lines
        .next()
        .ok_or_else(|| invalid("missing subject-id header".into()))??;
    let ids: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    if ids.is_empty() || ids.iter().any(String::is_empty) {
        return Err(invalid("empty subject id in header".into()));
    }

    let mut data: Vec<f64> = Vec::new();
    let mut n_features = 0usize;
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != ids.len() {
            return Err(invalid(format!(
                "feature line {} has {} cells, expected {}",
                lineno + 3,
                cells.len(),
                ids.len()
            )));
        }
        for c in cells {
            let v: f64 = c
                .trim()
                .parse()
                .map_err(|e| invalid(format!("bad value `{c}` on line {}: {e}", lineno + 3)))?;
            data.push(v);
        }
        n_features += 1;
    }
    if n_features == 0 {
        return Err(invalid("no feature rows".into()));
    }
    let matrix = Matrix::from_vec(n_features, ids.len(), data)
        .map_err(|e| invalid(format!("shape error: {e}")))?;
    GroupMatrix::from_matrix(matrix, ids, n_regions)
        .map_err(|e: ConnectomeError| invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Connectome;

    fn sample_group() -> GroupMatrix {
        let mk = |s: u64| {
            let ts = Matrix::from_fn(4, 20, |r, c| {
                ((s + 1) as f64 * (r as f64 + 1.0) * (c as f64 * 0.37)).sin()
            });
            Connectome::from_region_ts(&ts).unwrap()
        };
        let cs = [mk(0), mk(1), mk(2)];
        let ids: Vec<String> = (0..3).map(|i| format!("sub{i:03}/REST/LR")).collect();
        GroupMatrix::from_connectomes(&cs, &ids).unwrap()
    }

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("neurodeanon_io_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let g = sample_group();
        let path = tmpfile("roundtrip.csv");
        write_group_csv(&g, &path).unwrap();
        let back = read_group_csv(&path).unwrap();
        assert_eq!(back.n_regions(), g.n_regions());
        assert_eq!(back.subject_ids(), g.subject_ids());
        assert_eq!(back.n_features(), g.n_features());
        for (a, b) in back
            .as_matrix()
            .as_slice()
            .iter()
            .zip(g.as_matrix().as_slice())
        {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_missing_header() {
        let path = tmpfile("noheader.csv");
        std::fs::write(&path, "a,b\n1,2\n").unwrap();
        let e = read_group_csv(&path).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_ragged_rows() {
        let path = tmpfile("ragged.csv");
        std::fs::write(&path, "# regions=3\na,b\n1,2\n3\n").unwrap();
        assert!(read_group_csv(&path).is_err());
    }

    #[test]
    fn rejects_non_numeric() {
        let path = tmpfile("nan.csv");
        std::fs::write(&path, "# regions=3\na,b\n1,x\n").unwrap();
        assert!(read_group_csv(&path).is_err());
    }

    #[test]
    fn rejects_empty_file_and_empty_body() {
        let path = tmpfile("empty.csv");
        std::fs::write(&path, "").unwrap();
        assert!(read_group_csv(&path).is_err());
        std::fs::write(&path, "# regions=3\na,b\n").unwrap();
        assert!(read_group_csv(&path).is_err());
    }
}
