//! Named counters and gauges.
//!
//! Both are registered on first use and live for the process lifetime:
//! [`counter`] / [`gauge`] return `&'static` handles, so hot call sites can
//! cache the handle in a `OnceLock` and pay only a relaxed atomic RMW per
//! update. Unlike spans, counters and gauges are **not** gated on
//! [`crate::enabled`] — several invariants (the one-SVD-per-plan bench gate,
//! the scheduler's tile accounting) read them in untraced runs.
//!
//! Naming: dotted lowercase words (`svd.thin_calls`, `plan.gallery_bytes`).
//! Values that depend on thread count or wall time — worker busy
//! nanoseconds, imbalance ratios, allocator bytes — must use the
//! [`crate::RUNTIME_PREFIX`] (`rt.`) namespace so the determinism
//! fingerprint can exclude them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing (between [`crate::reset`]s) event counter.
#[derive(Debug)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-plus-running-max gauge for sampled quantities (bytes held,
/// imbalance ratios). Stores `f64` bit patterns in atomics, so updates are
/// lock-free; `max` uses the IEEE total order on non-negative finite values,
/// which every gauge in this workspace satisfies.
#[derive(Debug)]
pub struct Gauge {
    last_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Gauge {
    /// Records a new sample, updating both the last value and the max.
    pub fn set(&self, v: f64) {
        self.last_bits.store(v.to_bits(), Ordering::Relaxed);
        let mut cur = self.max_bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.max_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Most recent sample (0.0 before the first [`Gauge::set`]).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.last_bits.load(Ordering::Relaxed))
    }

    /// Largest sample seen since the last reset (0.0 before the first).
    pub fn max(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.last_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
        self.max_bits.store(0.0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Name → handle registries. Handles are leaked `Box`es: registration is
/// permanent, so `&'static` references stay valid across [`crate::reset`].
static COUNTERS: Mutex<BTreeMap<String, &'static Counter>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<String, &'static Gauge>> = Mutex::new(BTreeMap::new());

/// Returns the process-wide counter named `name`, registering it (at zero)
/// on first use. The handle is `&'static`; cache it at hot call sites.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(c) = reg.get(name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::new(Counter {
        value: AtomicU64::new(0),
    }));
    reg.insert(name.to_string(), c);
    c
}

/// Returns the process-wide gauge named `name`, registering it (at zero) on
/// first use.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = GAUGES.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(g) = reg.get(name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge {
        last_bits: AtomicU64::new(0.0f64.to_bits()),
        max_bits: AtomicU64::new(0.0f64.to_bits()),
    }));
    reg.insert(name.to_string(), g);
    g
}

/// Sorted copy of every registered counter's value.
pub(crate) fn counters_snapshot() -> Vec<(String, u64)> {
    COUNTERS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(name, c)| (name.clone(), c.get()))
        .collect()
}

/// Sorted copy of every registered gauge's `(last, max)`.
pub(crate) fn gauges_snapshot() -> Vec<(String, f64, f64)> {
    GAUGES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(name, g)| (name.clone(), g.get(), g.max()))
        .collect()
}

/// Zeroes every registered counter and gauge (registration survives).
pub(crate) fn reset_all() {
    for c in COUNTERS.lock().unwrap_or_else(|e| e.into_inner()).values() {
        c.reset();
    }
    for g in GAUGES.lock().unwrap_or_else(|e| e.into_inner()).values() {
        g.reset();
    }
}
