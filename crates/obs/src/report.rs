//! Snapshots of the observability state: the span tree, counters, and
//! gauges, plus a human-readable indented tree rendering and the
//! determinism fingerprint the property suites compare across thread counts.

use crate::span::{registry_snapshot, SpanStats};
use std::fmt::Write as _;

/// One aggregated span node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Full `/`-joined path (`plan.run/plan.correlate`).
    pub path: String,
    /// Leaf name (last path segment).
    pub name: String,
    /// Nesting depth (0 = root).
    pub depth: usize,
    /// Aggregated timing statistics.
    pub stats: SpanStats,
}

/// A consistent copy of spans, counters, and gauges.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Span nodes sorted by path, so parents precede their descendants.
    pub spans: Vec<SpanNode>,
    /// `(name, value)` for every registered counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, last, max)` for every registered gauge, sorted by name.
    pub gauges: Vec<(String, f64, f64)>,
}

/// Takes a snapshot of the current span registry, counters, and gauges.
pub fn snapshot() -> Snapshot {
    let spans = registry_snapshot()
        .into_iter()
        .map(|(path, stats)| {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(&path).to_string();
            SpanNode {
                path,
                name,
                depth,
                stats,
            }
        })
        .collect();
    Snapshot {
        spans,
        counters: crate::metrics::counters_snapshot(),
        gauges: crate::metrics::gauges_snapshot(),
    }
}

impl Snapshot {
    /// The span node at `path`, if recorded.
    pub fn span(&self, path: &str) -> Option<&SpanNode> {
        self.spans.iter().find(|n| n.path == path)
    }

    /// Value of the counter `name` (0 when unregistered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Fraction of the span at `path` covered by its *direct* children
    /// (`Σ child total / parent total`). `None` when the parent is missing
    /// or never accumulated time. This is the stage-attribution figure the
    /// acceptance gate checks: a well-instrumented pipeline accounts for
    /// ≥ 90% of its root span inside named stages.
    pub fn child_fraction(&self, path: &str) -> Option<f64> {
        let parent = self.span(path)?;
        if parent.stats.total_ns == 0 {
            return None;
        }
        let prefix = format!("{path}/");
        let child_depth = parent.depth + 1;
        let child_total: u128 = self
            .spans
            .iter()
            .filter(|n| n.depth == child_depth && n.path.starts_with(&prefix))
            .map(|n| n.stats.total_ns)
            .sum();
        Some(child_total as f64 / parent.stats.total_ns as f64)
    }

    /// Deterministic digest of the snapshot: span paths with hit counts and
    /// every counter/gauge outside the `rt.` runtime namespace. Two runs of
    /// the same workload must produce equal fingerprints at any thread
    /// count — timings (and `rt.*` telemetry) are deliberately excluded.
    pub fn fingerprint(&self) -> String {
        let mut out = String::new();
        for node in &self.spans {
            let _ = writeln!(out, "span {} ×{}", node.path, node.stats.count);
        }
        for (name, value) in &self.counters {
            if !crate::is_runtime_metric(name) {
                let _ = writeln!(out, "counter {name} = {value}");
            }
        }
        for (name, last, max) in &self.gauges {
            if !crate::is_runtime_metric(name) {
                let _ = writeln!(out, "gauge {name} = {last} max {max}");
            }
        }
        out
    }

    /// Renders the span tree (indented by depth) followed by counters and
    /// gauges — the `--trace` terminal report.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        if self.spans.is_empty() {
            out.push_str("(no spans recorded)\n");
        }
        for node in &self.spans {
            let avg_ns = node.stats.total_ns / u128::from(node.stats.count.max(1));
            let _ = writeln!(
                out,
                "{:indent$}{:<32} ×{:<6} total {:>10}  avg {:>10}  min {:>10}  max {:>10}",
                "",
                node.name,
                node.stats.count,
                fmt_ns(node.stats.total_ns),
                fmt_ns(avg_ns),
                fmt_ns(node.stats.min_ns),
                fmt_ns(node.stats.max_ns),
                indent = 2 * node.depth,
            );
        }
        let live_counters: Vec<_> = self.counters.iter().filter(|&&(_, v)| v != 0).collect();
        if !live_counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in live_counters {
                let _ = writeln!(out, "  {name:<38} {value}");
            }
        }
        let live_gauges: Vec<_> = self
            .gauges
            .iter()
            .filter(|&&(_, last, max)| last != 0.0 || max != 0.0)
            .collect();
        if !live_gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, last, max) in live_gauges {
                let _ = writeln!(out, "  {name:<38} {last} (max {max})");
            }
        }
        out
    }
}

/// Adaptive ns / µs / ms / s formatting (kept local so the crate stays
/// dependency-free; `bench::timing::fmt_duration` is the `Duration` twin).
fn fmt_ns(ns: u128) -> String {
    if ns == u128::MAX {
        return "-".to_string();
    }
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_000), "1.00 µs");
        assert_eq!(fmt_ns(999_999), "1000.00 µs");
        assert_eq!(fmt_ns(1_000_000), "1.00 ms");
        assert_eq!(fmt_ns(1_000_000_000), "1.00 s");
        assert_eq!(fmt_ns(u128::MAX), "-");
    }
}
