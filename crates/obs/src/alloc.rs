//! Byte/alloc-count accounting allocator (`alloc-stats` feature).
//!
//! Wraps [`std::alloc::System`] with relaxed atomic accounting: allocation
//! count, bytes currently live, and the high-water mark — a portable
//! peak-RSS-style figure for the heap. Installed as the process
//! `#[global_allocator]` whenever the feature is enabled, so the numbers
//! cover every crate in the build, not just instrumented ones.
//!
//! The accountant never touches the span/metric registries from inside the
//! allocator (those paths allocate); instead [`publish_gauges`] copies the
//! raw atomics into `rt.alloc.*` gauges on demand, typically right before a
//! snapshot/export. All `rt.`-prefixed, so the determinism fingerprint
//! ignores them (allocation counts vary with thread scheduling).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static BYTES_LIVE: AtomicU64 = AtomicU64::new(0);
static BYTES_PEAK: AtomicU64 = AtomicU64::new(0);

/// The accounting allocator; see the module docs.
pub struct CountingAlloc;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn on_alloc(size: usize) {
    ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
    let live = BYTES_LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    let mut peak = BYTES_PEAK.load(Ordering::Relaxed);
    while live > peak {
        match BYTES_PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(seen) => peak = seen,
        }
    }
}

fn on_dealloc(size: usize) {
    BYTES_LIVE.fetch_sub(size as u64, Ordering::Relaxed);
}

// SAFETY: delegates every operation to `System`, only adding relaxed
// counter updates, so `System`'s contract carries over unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Point-in-time allocator statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of successful allocation calls since process start.
    pub calls: u64,
    /// Bytes currently live on the heap.
    pub bytes_live: u64,
    /// High-water mark of live heap bytes.
    pub bytes_peak: u64,
}

/// Reads the raw accounting atomics.
pub fn stats() -> AllocStats {
    AllocStats {
        calls: ALLOC_CALLS.load(Ordering::Relaxed),
        bytes_live: BYTES_LIVE.load(Ordering::Relaxed),
        bytes_peak: BYTES_PEAK.load(Ordering::Relaxed),
    }
}

/// Copies the current allocator statistics into the `rt.alloc.calls`,
/// `rt.alloc.bytes_live`, and `rt.alloc.bytes_peak` gauges so they ride
/// along in snapshots and JSONL exports.
pub fn publish_gauges() {
    let s = stats();
    crate::gauge("rt.alloc.calls").set(s.calls as f64);
    crate::gauge("rt.alloc.bytes_live").set(s.bytes_live as f64);
    crate::gauge("rt.alloc.bytes_peak").set(s.bytes_peak as f64);
}
