//! Hierarchical wall-time spans.
//!
//! A span is an RAII guard: [`span`] opens it, dropping the guard closes it
//! and folds the elapsed wall time into a process-wide registry keyed by the
//! span's *path* — the `/`-joined chain of enclosing span names on the same
//! thread. The registry aggregates per path: hit count, total, min, and max
//! wall time. Parent→child structure is implicit in the paths, so a snapshot
//! reconstructs the tree without per-entry pointers.
//!
//! Nesting is tracked per thread (a thread-local stack of open paths). The
//! orchestration convention in this workspace is that spans open on the
//! *calling* thread only — `linalg::par` worker closures record counters,
//! never spans — which is what keeps the tree shape independent of the
//! thread count.
//!
//! Guards are `!Send` (the stack is thread-local) and tolerate early returns
//! and `?`-propagation: Rust drops them on every exit path. Out-of-LIFO
//! drops (guards stored in structs) are handled by truncating the stack back
//! to the guard's own frame rather than corrupting sibling spans.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::Mutex;
use std::time::Instant;

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// Number of times the span closed.
    pub count: u64,
    /// Total wall time across all closes, in nanoseconds.
    pub total_ns: u128,
    /// Fastest single close, in nanoseconds.
    pub min_ns: u128,
    /// Slowest single close, in nanoseconds.
    pub max_ns: u128,
}

/// Path-keyed span registry. A `BTreeMap` keeps snapshots sorted by path
/// (parents sort before their children, since a child path extends its
/// parent's with `/…`), and its `const` constructor avoids a lazy-init cell.
static REGISTRY: Mutex<BTreeMap<String, SpanStats>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// Stack of open span *paths* on this thread (innermost last).
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Locks the registry, recovering from poisoning (a panicking test thread
/// must not wedge every later span of the process).
fn lock_registry() -> std::sync::MutexGuard<'static, BTreeMap<String, SpanStats>> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Opens a span named `name` nested under the innermost span already open on
/// this thread. Returns an RAII guard; the span closes (and its wall time is
/// recorded) when the guard drops. When tracing is disabled the guard is
/// inert and the call costs one relaxed atomic load.
///
/// `name` is a dotted lowercase identifier (`plan.prepare`) and must not
/// contain `/`, which is reserved for joining nesting levels into paths.
#[must_use = "a span closes when its guard drops; binding it to `_` closes it immediately"]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard {
            open: None,
            _not_send: PhantomData,
        };
    }
    debug_assert!(
        !name.contains('/'),
        "span name {name:?} contains the path separator '/'"
    );
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.to_string(),
        };
        stack.push(path.clone());
        path
    });
    SpanGuard {
        // The clock starts *after* the bookkeeping so a span's own time
        // excludes its entry fee (the exit fee lands in the parent).
        open: Some((path, Instant::now())),
        _not_send: PhantomData,
    }
}

/// RAII guard for an open span; see [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    /// `(path, entry time)` for a live span; `None` when tracing was
    /// disabled at entry.
    open: Option<(String, Instant)>,
    /// Spans nest per thread, so the guard must not cross threads.
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((path, start)) = self.open.take() else {
            return;
        };
        let elapsed = start.elapsed().as_nanos();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // LIFO drop pops one frame; an out-of-order drop truncates back
            // to this guard's frame so descendants cannot leak into later
            // siblings' paths.
            if let Some(pos) = stack.iter().rposition(|p| p == &path) {
                stack.truncate(pos);
            }
        });
        record(path, elapsed);
    }
}

/// Folds one closed span into the registry.
fn record(path: String, elapsed_ns: u128) {
    let mut reg = lock_registry();
    let stats = reg.entry(path).or_insert(SpanStats {
        count: 0,
        total_ns: 0,
        min_ns: u128::MAX,
        max_ns: 0,
    });
    stats.count += 1;
    stats.total_ns += elapsed_ns;
    stats.min_ns = stats.min_ns.min(elapsed_ns);
    stats.max_ns = stats.max_ns.max(elapsed_ns);
}

/// Sorted copy of the span registry (path → stats).
pub(crate) fn registry_snapshot() -> Vec<(String, SpanStats)> {
    lock_registry()
        .iter()
        .map(|(path, stats)| (path.clone(), *stats))
        .collect()
}

/// Clears every recorded span (the open-span stacks of live threads are
/// untouched; their spans record into the fresh epoch on close).
pub(crate) fn reset_registry() {
    lock_registry().clear();
}

/// Number of spans currently open on the calling thread (test hook for the
/// RAII balance property).
pub fn open_depth() -> usize {
    STACK.with(|stack| stack.borrow().len())
}

/// Runs `f` with an empty span stack, restoring the caller's open spans
/// afterwards (on unwind too): spans `f` opens become roots, exactly as if
/// they had opened on a fresh worker thread.
///
/// This is the hook `linalg::par` wraps around every dispatched closure —
/// inline, calling-thread, and worker executions alike — so a kernel called
/// from inside a parallel region records the *same* span paths at any
/// thread count. Without it, a closure running inline (one thread) would
/// nest under the caller's open span while the same closure on a worker
/// thread would root, and the tree shape would depend on the thread count.
pub fn detached<T>(f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Vec<String>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(saved) = self.0.take() {
                STACK.with(|stack| *stack.borrow_mut() = saved);
            }
        }
    }
    let saved = STACK.with(|stack| std::mem::take(&mut *stack.borrow_mut()));
    let _restore = Restore(Some(saved));
    f()
}
