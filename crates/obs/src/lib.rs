#![warn(missing_docs)]

//! # neurodeanon-obs
//!
//! Zero-dependency observability for the attack stack: hierarchical wall-time
//! spans, named counters and gauges, and (behind the off-by-default
//! `alloc-stats` feature) a byte/alloc-count accounting allocator.
//!
//! The module exists to make the pipeline's cost structure *attributable* —
//! per-stage latency instead of end-to-end medians — without perturbing
//! results. Its hard contract (DESIGN.md §1.6):
//!
//! * **Observability never changes bits.** Instrumentation only ever reads
//!   clocks and bumps atomics; a traced run's numerical output is bitwise
//!   identical to an untraced one at any thread count.
//! * **Disabled tracing is near-free.** [`span`] starts with one relaxed
//!   atomic load and returns an inert guard when tracing is off; no clock is
//!   read, no lock is taken, no allocation happens. Counters and gauges stay
//!   live even with tracing disabled (they are single relaxed atomic RMWs and
//!   several invariants — e.g. the one-SVD-per-plan bench gate — read them
//!   unconditionally), but they are placed at call-granularity sites, never
//!   inner loops.
//! * **Deterministic shape.** The span tree (paths and hit counts) and every
//!   counter/gauge *not* prefixed `rt.` depend only on the workload, never on
//!   the thread count or timing. Runtime-dependent telemetry (worker busy
//!   nanoseconds, imbalance ratios, allocator bytes) must live under the
//!   `rt.` prefix, which [`Snapshot::fingerprint`] excludes — that is what
//!   lets the property suites assert identical telemetry at
//!   `NEURODEANON_THREADS=1` and `8`.
//!
//! Span names use dotted lowercase words (`plan.prepare`, `stats.xcorr`);
//! nesting joins them with `/` into paths such as
//! `plan.run/plan.correlate/stats.xcorr`. Names must not contain `/`.
//!
//! JSONL export intentionally lives in `bench::timing` (which owns the
//! host-metadata stamping) — this crate only produces [`Snapshot`]s and a
//! human-readable tree rendering, so it can sit below `linalg` in the
//! dependency graph.

pub mod metrics;
pub mod report;
pub mod span;

#[cfg(feature = "alloc-stats")]
pub mod alloc;

pub use metrics::{counter, gauge, Counter, Gauge};
pub use report::{snapshot, Snapshot};
pub use span::{span, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};

/// Prefix marking runtime-dependent (thread-count- or timing-sensitive)
/// counters and gauges, excluded from [`Snapshot::fingerprint`].
pub const RUNTIME_PREFIX: &str = "rt.";

/// The match server's metric namespace (`serve.queue_depth`,
/// `serve.batches`, `serve.sheds`, `serve.quarantined`), also excluded from
/// [`Snapshot::fingerprint`]: the service plane is arrival-timing-dependent
/// by nature — queue depths, batch packings, and deadline sheds vary run to
/// run even though every *response* stays bit-identical. Treating the whole
/// namespace as runtime telemetry keeps the never-changes-a-bit fingerprint
/// contract intact without renaming the service metrics.
pub const SERVE_PREFIX: &str = "serve.";

/// Process-wide tracing switch. Off by default; spans are inert until
/// [`enable`] flips this.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns span tracing on for the whole process.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns span tracing off. Spans already open keep recording on drop (their
/// entry fee is paid; dropping the record would unbalance the tree).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether span tracing is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears the span registry and zeroes every registered counter and gauge.
///
/// Registered counter/gauge handles stay valid (they are `&'static`); only
/// their values reset. Intended for tests and long-lived processes that
/// export deltas; concurrent writers simply land in the fresh epoch.
pub fn reset() {
    span::reset_registry();
    metrics::reset_all();
}

/// `true` when `name` is runtime-dependent telemetry (the `rt.` namespace,
/// plus the match server's `serve.` namespace — see [`SERVE_PREFIX`]).
pub fn is_runtime_metric(name: &str) -> bool {
    name.starts_with(RUNTIME_PREFIX) || name.starts_with(SERVE_PREFIX)
}
