//! Behavioural suite for the observability crate: span nesting and RAII
//! balance (early returns, `?`-propagation, out-of-LIFO drops), counter and
//! gauge semantics across resets, and the determinism fingerprint's
//! exclusion of `rt.*` runtime telemetry.
//!
//! The span registry, counters, and gauges are process-global, so every
//! test serializes on one mutex and starts from `obs::reset()`.

use neurodeanon_obs as obs;
use std::sync::Mutex;

/// Global-state lock: the test harness runs tests on several threads, but
/// all of these mutate the same registries.
static GLOBAL: Mutex<()> = Mutex::new(());

fn isolated<T>(f: impl FnOnce() -> T) -> T {
    let _lock = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::enable();
    let out = f();
    obs::disable();
    obs::reset();
    out
}

#[test]
fn nested_spans_build_slash_joined_paths() {
    isolated(|| {
        {
            let _root = obs::span("plan.run");
            {
                let _child = obs::span("plan.correlate");
                let _leaf = obs::span("stats.xcorr");
            }
            let _child2 = obs::span("plan.match");
        }
        let snap = obs::snapshot();
        let paths: Vec<&str> = snap.spans.iter().map(|n| n.path.as_str()).collect();
        assert_eq!(
            paths,
            [
                "plan.run",
                "plan.run/plan.correlate",
                "plan.run/plan.correlate/stats.xcorr",
                "plan.run/plan.match",
            ]
        );
        // Depth and leaf names are derived from the path.
        let leaf = snap.span("plan.run/plan.correlate/stats.xcorr").unwrap();
        assert_eq!(leaf.depth, 2);
        assert_eq!(leaf.name, "stats.xcorr");
        assert!(snap.spans.iter().all(|n| n.stats.count == 1));
    });
}

#[test]
fn repeated_spans_aggregate_counts_and_times() {
    isolated(|| {
        for _ in 0..5 {
            let _g = obs::span("stage");
        }
        let snap = obs::snapshot();
        let node = snap.span("stage").unwrap();
        assert_eq!(node.stats.count, 5);
        assert!(node.stats.min_ns <= node.stats.max_ns);
        assert!(node.stats.total_ns >= node.stats.max_ns);
    });
}

#[test]
fn spans_balance_across_early_returns_and_question_mark() {
    fn early(n: usize) -> usize {
        let _g = obs::span("early");
        if n == 0 {
            return 0;
        }
        n * 2
    }
    fn fallible(fail: bool) -> Result<usize, String> {
        let _g = obs::span("fallible");
        let inner = || -> Result<usize, String> {
            let _h = obs::span("inner");
            if fail {
                return Err("boom".to_string());
            }
            Ok(1)
        };
        let v = inner()?;
        Ok(v + 1)
    }
    isolated(|| {
        assert_eq!(early(0), 0);
        assert_eq!(early(3), 6);
        assert!(fallible(true).is_err());
        assert_eq!(fallible(false).unwrap(), 2);
        // Every exit path closed its spans: nothing left open, and the
        // error path recorded `inner` exactly as often as the happy path.
        assert_eq!(obs::span::open_depth(), 0);
        let snap = obs::snapshot();
        assert_eq!(snap.span("early").unwrap().stats.count, 2);
        assert_eq!(snap.span("fallible").unwrap().stats.count, 2);
        assert_eq!(snap.span("fallible/inner").unwrap().stats.count, 2);
    });
}

#[test]
fn out_of_lifo_drop_does_not_corrupt_sibling_paths() {
    isolated(|| {
        let outer = obs::span("outer");
        let inner = obs::span("inner");
        // Dropping the *outer* guard first truncates the stack back to its
        // own frame; the inner guard then records without a double-pop.
        drop(outer);
        let _sibling = obs::span("sibling");
        drop(inner);
        assert_eq!(obs::span::open_depth(), 1); // `sibling` still open
        drop(_sibling);
        let snap = obs::snapshot();
        assert!(snap.span("outer").is_some());
        assert!(snap.span("outer/inner").is_some());
        // The sibling opened *after* outer closed, so it is a root span.
        assert!(snap.span("sibling").is_some());
        assert_eq!(obs::span::open_depth(), 0);
    });
}

#[test]
fn disabled_spans_are_inert() {
    let _lock = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::disable();
    {
        let _g = obs::span("ghost");
        assert_eq!(obs::span::open_depth(), 0);
    }
    assert!(obs::snapshot().spans.is_empty());
    obs::reset();
}

#[test]
fn counters_and_gauges_survive_reset_as_handles() {
    isolated(|| {
        let c = obs::counter("test.events");
        c.add(41);
        c.incr();
        assert_eq!(c.get(), 42);
        let g = obs::gauge("test.level");
        g.set(3.5);
        g.set(1.0);
        assert_eq!(g.get(), 1.0);
        assert_eq!(g.max(), 3.5);

        obs::reset();
        // Same handles, zeroed values; re-lookup returns the same counter.
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(g.max(), 0.0);
        c.incr();
        assert_eq!(obs::counter("test.events").get(), 1);
    });
}

#[test]
fn fingerprint_excludes_runtime_namespace() {
    isolated(|| {
        {
            let _g = obs::span("work");
        }
        obs::counter("svd.thin_calls").add(3);
        obs::counter("rt.par.busy_ns").add(123_456);
        obs::gauge("plan.gallery_bytes").set(800.0);
        obs::gauge("rt.par.imbalance").set(1.7);
        let fp = obs::snapshot().fingerprint();
        assert!(fp.contains("span work ×1"), "{fp}");
        assert!(fp.contains("counter svd.thin_calls = 3"), "{fp}");
        assert!(fp.contains("gauge plan.gallery_bytes = 800"), "{fp}");
        assert!(!fp.contains("rt.par.busy_ns"), "{fp}");
        assert!(!fp.contains("rt.par.imbalance"), "{fp}");
        assert!(obs::is_runtime_metric("rt.par.busy_ns"));
        assert!(!obs::is_runtime_metric("par.tiles"));
        // The match server's namespace is runtime telemetry too: batching
        // and shedding are arrival-timing-dependent, so serve.* metrics
        // must never enter the fingerprint.
        assert!(obs::is_runtime_metric("serve.queue_depth"));
        assert!(obs::is_runtime_metric("serve.batches"));
        assert!(!obs::is_runtime_metric("served.total"));
    });
}

#[test]
fn fingerprint_ignores_timings_entirely() {
    isolated(|| {
        // Two epochs of the same shape with very different durations must
        // fingerprint identically.
        {
            let _g = obs::span("stage");
        }
        obs::counter("n.calls").incr();
        let fast = obs::snapshot().fingerprint();
        obs::reset();
        {
            let _g = obs::span("stage");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        obs::counter("n.calls").incr();
        let slow = obs::snapshot().fingerprint();
        assert_eq!(fast, slow);
    });
}

#[test]
fn child_fraction_attributes_stage_time() {
    isolated(|| {
        {
            let _root = obs::span("root");
            {
                let _a = obs::span("a");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
            {
                let _b = obs::span("b");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        let snap = obs::snapshot();
        let frac = snap.child_fraction("root").unwrap();
        assert!(
            frac > 0.5 && frac <= 1.0 + 1e-9,
            "children should dominate the root: {frac}"
        );
        assert!(snap.child_fraction("missing").is_none());
    });
}

#[test]
fn render_tree_indents_children_and_lists_metrics() {
    isolated(|| {
        {
            let _root = obs::span("root");
            let _child = obs::span("child");
        }
        obs::counter("events").add(7);
        obs::gauge("level").set(2.5);
        let text = obs::snapshot().render_tree();
        assert!(text.contains("root"), "{text}");
        assert!(text.contains("\n  child"), "child must be indented: {text}");
        assert!(text.contains("events"), "{text}");
        assert!(text.contains("level"), "{text}");
    });
}

#[test]
fn worker_thread_spans_root_at_their_own_thread() {
    // Spans opened on another thread must not attach to this thread's open
    // span (nesting is thread-local by design; the workspace convention is
    // that worker closures record counters, not spans).
    isolated(|| {
        let _root = obs::span("main.root");
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = obs::span("worker.task");
            });
        });
        drop(_root);
        let snap = obs::snapshot();
        assert!(snap.span("worker.task").is_some());
        assert!(snap.span("main.root/worker.task").is_none());
    });
}

#[cfg(feature = "alloc-stats")]
#[test]
fn alloc_accountant_tracks_heap_growth() {
    let _lock = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let before = obs::alloc::stats();
    let v: Vec<u8> = vec![0u8; 1 << 20];
    let during = obs::alloc::stats();
    assert!(during.calls > before.calls);
    assert!(during.bytes_peak >= before.bytes_peak.max(1 << 20));
    drop(v);
    obs::alloc::publish_gauges();
    assert!(obs::gauge("rt.alloc.bytes_peak").get() >= (1 << 20) as f64);
}
