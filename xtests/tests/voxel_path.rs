//! Cross-crate integration of the voxel-level path: synthetic scanner →
//! preprocessing pipeline → atlas reduction → connectome → attack, plus
//! QC-report plumbing.

use neurodeanon_atlas::{grown_atlas, region_average, VoxelGrid};
use neurodeanon_connectome::{Connectome, GroupMatrix};
use neurodeanon_core::attack::{AttackConfig, DeanonAttack};
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
use neurodeanon_fmri::scanner::{Scanner, ScannerConfig};
use neurodeanon_linalg::{Matrix, Rng64};
use neurodeanon_preprocess::{Pipeline, PipelineConfig};

fn voxel_cohort(seed: u64) -> HcpCohort {
    HcpCohort::generate(HcpCohortConfig {
        n_subjects: 8,
        n_regions: 14,
        n_timepoints: 420,
        n_pop_factors: 8,
        n_task_factors: 4,
        n_sig_factors: 3,
        n_sig_regions: 5,
        noise_std: 0.4,
        session_strength: 0.1,
        signature_gain: 1.8,
        signature_instability: 0.3,
        seed,
        scrub_fd_threshold: None,
    })
    .unwrap()
}

fn group_via_pipeline(
    cohort: &HcpCohort,
    pipeline: &Pipeline,
    scanner: &Scanner,
    session: Session,
    seed: u64,
) -> GroupMatrix {
    let grid = VoxelGrid::new(12, 12, 12).unwrap();
    let atlas = grown_atlas("xtest", grid, 14, seed).unwrap();
    let nf = 14 * 13 / 2;
    let mut data = Matrix::zeros(nf, cohort.n_subjects());
    let mut ids = Vec::new();
    for s in 0..cohort.n_subjects() {
        let latent = cohort.region_ts(s, Task::Rest, session).unwrap();
        let mut rng = Rng64::new(seed ^ ((s as u64) << 8 | session.index()));
        let vol = scanner.acquire(&latent, &atlas, &mut rng).unwrap();
        let (clean, _) = pipeline.run(vol, &atlas).unwrap();
        data.set_col(s, &Connectome::from_region_ts(&clean).unwrap().vectorize())
            .unwrap();
        ids.push(format!(
            "{}/REST/{}",
            cohort.subject_id(s),
            session.encoding()
        ));
    }
    GroupMatrix::from_matrix(data, ids, 14).unwrap()
}

#[test]
fn full_voxel_path_identifies_subjects() {
    let seed = 0x0e2e;
    let cohort = voxel_cohort(seed);
    let scanner = Scanner::new(ScannerConfig::default()).unwrap();
    let pipeline = Pipeline::default();
    let known = group_via_pipeline(&cohort, &pipeline, &scanner, Session::One, seed);
    let anon = group_via_pipeline(&cohort, &pipeline, &scanner, Session::Two, seed);
    let attack = DeanonAttack::new(AttackConfig {
        n_features: 50,
        ..Default::default()
    })
    .unwrap();
    let out = attack.run(&known, &anon).unwrap();
    assert!(out.accuracy >= 0.5, "voxel-path accuracy {}", out.accuracy);
    assert!(out.mean_diagonal_similarity() > out.mean_offdiagonal_similarity());
}

#[test]
fn clean_scanner_plus_region_average_equals_latent_connectome() {
    // With a noiseless scanner the voxel path must reproduce the latent
    // connectome exactly (averaging of identical copies is lossless).
    let seed = 0x1dea;
    let cohort = voxel_cohort(seed);
    let grid = VoxelGrid::new(12, 12, 12).unwrap();
    let atlas = grown_atlas("clean", grid, 14, seed).unwrap();
    let scanner = Scanner::new(ScannerConfig::clean()).unwrap();
    let latent = cohort.region_ts(0, Task::Rest, Session::One).unwrap();
    let vol = scanner
        .acquire(&latent, &atlas, &mut Rng64::new(1))
        .unwrap();
    let reduced = region_average(&atlas, vol.as_matrix()).unwrap();
    let direct = Connectome::from_region_ts(&latent).unwrap();
    let via_voxels = Connectome::from_region_ts(&reduced).unwrap();
    let diff = direct
        .as_matrix()
        .sub(via_voxels.as_matrix())
        .unwrap()
        .max_abs();
    assert!(diff < 1e-9, "lossless path drifted by {diff}");
}

#[test]
fn pipeline_reports_flow_through() {
    let seed = 0x9c;
    let cohort = voxel_cohort(seed);
    let grid = VoxelGrid::new(12, 12, 12).unwrap();
    let atlas = grown_atlas("qc", grid, 14, seed).unwrap();
    let mut cfg = ScannerConfig::default();
    cfg.n_spikes = 6;
    cfg.spike_magnitude = 12.0;
    let scanner = Scanner::new(cfg).unwrap();
    let latent = cohort.region_ts(0, Task::Rest, Session::One).unwrap();
    let vol = scanner
        .acquire(&latent, &atlas, &mut Rng64::new(2))
        .unwrap();
    let (cleaned, report) = Pipeline::default().run(vol, &atlas).unwrap();
    assert_eq!(cleaned.rows(), 14);
    assert!(report.brain_voxels > 0, "skull strip reported nothing");
    assert!(
        !report.scrubbed_frames.is_empty(),
        "scrubbing missed injected spikes"
    );
    assert!(report.gsr_variance_removed > 0.0);
    assert_eq!(report.motion_shifts.len(), cleaned.cols());
}

#[test]
fn pipeline_beats_bare_zscore_under_heavy_artifacts() {
    let seed = 0xbad;
    let cohort = voxel_cohort(seed);
    let scanner = Scanner::new(ScannerConfig {
        drift_amplitude: 4.0,
        global_signal: 3.0,
        respiration: 3.0,
        n_motion_events: 0,
        ..ScannerConfig::default()
    })
    .unwrap();
    let attack = DeanonAttack::new(AttackConfig {
        n_features: 50,
        ..Default::default()
    })
    .unwrap();
    // Full pipeline without motion correction (no motion injected).
    let full = Pipeline::new(PipelineConfig {
        motion_correct: false,
        ..Default::default()
    });
    let bare = Pipeline::new(PipelineConfig {
        zscore: true,
        ..PipelineConfig::none()
    });
    let acc = |p: &Pipeline| {
        let known = group_via_pipeline(&cohort, p, &scanner, Session::One, seed);
        let anon = group_via_pipeline(&cohort, p, &scanner, Session::Two, seed);
        attack.run(&known, &anon).unwrap().accuracy
    };
    let cleaned = acc(&full);
    let raw = acc(&bare);
    // One-subject tolerance: these are 8-subject cohorts, so each match is
    // worth 0.125 of accuracy.
    assert!(
        cleaned + 0.13 >= raw,
        "pipeline {cleaned} well below bare z-score {raw}"
    );
    assert!(cleaned >= 0.5, "pipeline accuracy collapsed: {cleaned}");
}
