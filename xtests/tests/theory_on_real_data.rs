//! The paper's §3.1.2 theory, verified on actual connectome group matrices
//! (not synthetic random matrices): the additive bound of Equation 2, the
//! relative projection behaviour of Equation 4, and the population
//! robustness of leverage-selected features that Ravindra et al. (2018)
//! report and this paper relies on.

use neurodeanon_connectome::GroupMatrix;
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
use neurodeanon_linalg::Rng64;
use neurodeanon_sampling::sketch::{
    additive_bound, best_rank_k_error, gram_error, projection_error,
};
use neurodeanon_sampling::{principal_features, row_sample, SamplingDistribution};

fn group(seed: u64) -> GroupMatrix {
    let cohort = HcpCohort::generate(HcpCohortConfig::small(12, seed)).unwrap();
    cohort.group_matrix(Task::Rest, Session::One).unwrap()
}

#[test]
fn equation2_additive_bound_on_connectome_data() {
    // E‖AᵀA − ÃᵀÃ‖_F ≤ ‖A‖²_F / √s for ℓ₂ sampling, checked in expectation
    // on a real group matrix (1770 features × 12 subjects).
    let g = group(3);
    let a = g.as_matrix();
    let s = 64;
    let bound = additive_bound(a, s);
    let mut rng = Rng64::new(17);
    let runs = 40;
    let mut mean_err = 0.0;
    for _ in 0..runs {
        let sk = row_sample(a, s, SamplingDistribution::L2Norm, &mut rng).unwrap();
        mean_err += gram_error(a, &sk.sketch).unwrap();
    }
    mean_err /= runs as f64;
    assert!(
        mean_err <= bound,
        "mean sketch error {mean_err:.3} exceeds bound {bound:.3}"
    );
}

#[test]
fn equation4_projection_behaviour_on_connectome_data() {
    // Leverage row-sampling projects the group matrix almost as well as the
    // best rank-k approximation (the relative-error regime of Equation 4).
    let g = group(5);
    let a = g.as_matrix();
    let k = 4;
    let opt = best_rank_k_error(a, k).unwrap();
    let mut rng = Rng64::new(23);
    let sk = row_sample(a, 60, SamplingDistribution::Leverage, &mut rng).unwrap();
    let err = projection_error(a, &sk.sketch).unwrap();
    assert!(
        err <= 2.0 * opt + 1e-9,
        "projection error {err:.4} vs best rank-{k} {opt:.4}"
    );
}

#[test]
fn deterministic_selection_is_near_lossless_at_paper_budget() {
    // "<100 rows suffice": top-100 deterministic leverage features lose
    // almost nothing of the subject-discriminating structure relative to
    // the full 1770-feature matrix.
    let g = group(7);
    let a = g.as_matrix();
    let pf = principal_features(a, 100, None).unwrap();
    let reduced = pf.reduce(a).unwrap();
    let err = projection_error(a, &reduced).unwrap();
    // The retained features must capture the dominant subject structure:
    // the loss stays below the best rank-2 truncation error (which already
    // discards most inter-subject detail).
    let rank2 = best_rank_k_error(a, 2).unwrap();
    assert!(err < rank2, "loss {err:.4} vs rank-2 reference {rank2:.4}");
}

#[test]
fn leverage_ranking_is_robust_across_populations() {
    // The paper (§2): "the features selected by our method are shown to be
    // robust across populations of subjects." Select on cohort A, verify
    // heavy overlap with the selection from disjoint cohort B of the same
    // generative population (same cohort seed ⇒ same anatomy/signature
    // support; different subjects via the subject split).
    let cohort = HcpCohort::generate(HcpCohortConfig::small(24, 9)).unwrap();
    let full = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let first: Vec<usize> = (0..12).collect();
    let second: Vec<usize> = (12..24).collect();
    let ga = full.select_subjects(&first).unwrap();
    let gb = full.select_subjects(&second).unwrap();
    let pa = principal_features(ga.as_matrix(), 100, None).unwrap();
    let pb = principal_features(gb.as_matrix(), 100, None).unwrap();
    let sa: std::collections::HashSet<usize> = pa.indices.iter().copied().collect();
    let overlap = pb.indices.iter().filter(|i| sa.contains(i)).count();
    // 100 of 1770 features chosen twice independently: chance overlap ≈ 6.
    assert!(
        overlap >= 40,
        "only {overlap}/100 features shared across populations"
    );
}

#[test]
fn features_selected_on_one_group_transfer_to_matching() {
    // The attack's core protocol: features from the *known* group make the
    // *anonymous* group identifiable. Verify the reverse direction works
    // equally (selection on session 2, matching session 1) — the symmetry
    // behind Figure 5's near-symmetric diagonal blocks.
    let cohort = HcpCohort::generate(HcpCohortConfig::small(14, 10)).unwrap();
    let s1 = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let s2 = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
    let attack = neurodeanon_core::attack::DeanonAttack::new(Default::default()).unwrap();
    let fwd = attack.run(&s1, &s2).unwrap();
    let rev = attack.run(&s2, &s1).unwrap();
    assert!(fwd.accuracy >= 0.8 && rev.accuracy >= 0.8);
    assert!((fwd.accuracy - rev.accuracy).abs() <= 0.25);
}
