//! Fast determinism smoke test: the E1 attack (rest-session similarity,
//! Figure 1) run twice from the same seed must produce bit-identical
//! similarity matrices and an accuracy above the floor. Sized to finish in
//! seconds — this is the first thing to run when touching the pipeline.

use neurodeanon_core::attack::AttackConfig;
use neurodeanon_core::experiments::similarity_experiment;
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Task};
use neurodeanon_testkit::gen::u64_in;
use neurodeanon_testkit::{forall, tk_assert, tk_assert_eq, Config};

#[test]
fn e1_attack_is_deterministic_and_accurate() {
    forall!(Config::cases(4), (seed in u64_in(0..10_000)) => {
        let run = || {
            let cohort = HcpCohort::generate(HcpCohortConfig::small(8, seed)).unwrap();
            similarity_experiment(&cohort, Task::Rest, AttackConfig::default()).unwrap()
        };
        let a = run();
        let b = run();
        // Bit-identical similarity matrices, not merely close.
        tk_assert_eq!(a.similarity.as_slice(), b.similarity.as_slice());
        tk_assert_eq!(a.accuracy, b.accuracy);
        // The attack must actually work on the default synthetic cohort.
        tk_assert!(a.accuracy >= 0.75, "accuracy {} below floor", a.accuracy);
        tk_assert!(a.contrast() > 0.0);
    });
}
