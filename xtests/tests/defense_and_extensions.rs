//! Integration tests for the §4 defense machinery, the §3.3.3 block-timing
//! extension, and the CSV attack path the `deanon` CLI uses.

use neurodeanon_connectome::io::{read_group_csv, write_group_csv};
use neurodeanon_core::attack::{AttackConfig, DeanonAttack};
use neurodeanon_core::defense::{evaluate_defense, signature_edges, DefensePlan};
use neurodeanon_core::experiments::block_performance_experiment;
use neurodeanon_core::performance::PerfConfig;
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
use neurodeanon_linalg::Rng64;

#[test]
fn defense_workflow_end_to_end() {
    // Publisher flow: localize signature edges on the release, perturb,
    // verify attack degradation and utility accounting.
    let cohort = HcpCohort::generate(HcpCohortConfig::small(16, 201)).unwrap();
    let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let release = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
    let plan = DefensePlan {
        edges: signature_edges(&release, 120).unwrap(),
        sigma: 0.7,
    };
    let mut rng = Rng64::new(5);
    let out = evaluate_defense(&known, &release, &plan, AttackConfig::default(), &mut rng).unwrap();
    assert!(
        out.accuracy_before >= 0.8,
        "baseline {}",
        out.accuracy_before
    );
    assert!(
        out.accuracy_after <= out.accuracy_before,
        "defense did not reduce accuracy"
    );
    assert!(out.untouched_fraction > 0.9);
}

#[test]
fn csv_roundtrip_attack_matches_in_memory_attack() {
    // The deanon CLI path: write both group matrices to CSV, read back,
    // attack — results must equal the in-memory attack exactly.
    let cohort = HcpCohort::generate(HcpCohortConfig::small(10, 202)).unwrap();
    let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
    let dir = std::env::temp_dir().join("neurodeanon_xtest_io");
    std::fs::create_dir_all(&dir).unwrap();
    let kp = dir.join("known.csv");
    let ap = dir.join("anon.csv");
    write_group_csv(&known, &kp).unwrap();
    write_group_csv(&anon, &ap).unwrap();
    let known2 = read_group_csv(&kp).unwrap();
    let anon2 = read_group_csv(&ap).unwrap();

    let attack = DeanonAttack::new(AttackConfig::default()).unwrap();
    let direct = attack.run(&known, &anon).unwrap();
    let via_csv = attack.run(&known2, &anon2).unwrap();
    assert_eq!(direct.predicted, via_csv.predicted);
    assert_eq!(direct.accuracy, via_csv.accuracy);
    assert_eq!(direct.selected_features, via_csv.selected_features);
}

#[test]
fn block_extension_produces_usable_predictions() {
    let cohort = HcpCohort::generate(HcpCohortConfig::small(30, 203)).unwrap();
    let res = block_performance_experiment(
        &cohort,
        Task::Language,
        &PerfConfig {
            n_repeats: 4,
            ..Default::default()
        },
    )
    .unwrap();
    for u in 0..2 {
        assert!(res.timing_aware[u].0.is_finite());
        assert!(res.timing_blind[u].0.is_finite());
        // Both arms produce informative predictions on this cohort.
        assert!(res.timing_aware[u].0 < 40.0);
    }
}
