//! Cross-crate integration: the complete latent-path attack, exercised the
//! way the paper's evaluation uses it (datasets → connectomes → sampling →
//! matching), with determinism and accuracy-floor guarantees.

use neurodeanon_connectome::EdgeIndex;
use neurodeanon_core::attack::{AttackConfig, DeanonAttack, MatchRule};
use neurodeanon_datasets::{
    AdhdCohort, AdhdCohortConfig, AdhdGroup, HcpCohort, HcpCohortConfig, Session, Task,
};

fn hcp(n: usize, seed: u64) -> HcpCohort {
    HcpCohort::generate(HcpCohortConfig::small(n, seed)).expect("valid config")
}

#[test]
fn rest_rest_identification_floor() {
    // Figure 1's phenomenon at test scale: ≥ 85% on 20 subjects.
    let cohort = hcp(20, 11);
    let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
    let attack = DeanonAttack::new(AttackConfig::default()).unwrap();
    let out = attack.run(&known, &anon).unwrap();
    assert!(out.accuracy >= 0.85, "accuracy {}", out.accuracy);
    assert!(out.mean_diagonal_similarity() > out.mean_offdiagonal_similarity());
}

#[test]
fn cross_task_identification_works_from_rest() {
    // §3.3.1: a de-anonymized REST dataset compromises task datasets.
    let cohort = hcp(16, 12);
    let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let attack = DeanonAttack::new(AttackConfig::default()).unwrap();
    for task in [Task::Language, Task::Relational] {
        let anon = cohort.group_matrix(task, Session::Two).unwrap();
        let out = attack.run(&known, &anon).unwrap();
        assert!(
            out.accuracy >= 0.5,
            "rest → {task}: accuracy {}",
            out.accuracy
        );
    }
}

#[test]
fn attack_is_deterministic_end_to_end() {
    let run = || {
        let cohort = hcp(10, 21);
        let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
        let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
        DeanonAttack::new(AttackConfig::default())
            .unwrap()
            .run(&known, &anon)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.predicted, b.predicted);
    assert_eq!(a.selected_features, b.selected_features);
    assert_eq!(a.accuracy, b.accuracy);
}

#[test]
fn hungarian_and_argmax_agree_on_easy_cohorts() {
    let cohort = hcp(12, 31);
    let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
    let argmax = DeanonAttack::new(AttackConfig::default())
        .unwrap()
        .run(&known, &anon)
        .unwrap();
    let hungarian = DeanonAttack::new(AttackConfig {
        match_rule: MatchRule::Hungarian,
        ..Default::default()
    })
    .unwrap()
    .run(&known, &anon)
    .unwrap();
    // On a well-separated cohort the greedy rule is already a permutation
    // and the optimal assignment cannot do worse.
    assert!(hungarian.accuracy >= argmax.accuracy - 1e-9);
}

#[test]
fn selected_features_localize_to_signature_regions() {
    // The paper's defense discussion (§4) depends on the attack localizing
    // a small signature; verify the selection is heavily enriched in
    // ground-truth signature-region pairs.
    let cohort = hcp(16, 41);
    let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
    let out = DeanonAttack::new(AttackConfig::default())
        .unwrap()
        .run(&known, &anon)
        .unwrap();
    let sig: std::collections::HashSet<usize> =
        cohort.signature_regions().iter().copied().collect();
    let edges = EdgeIndex::new(cohort.config().n_regions).unwrap();
    let hits = out
        .selected_features
        .iter()
        .filter(|&&f| {
            let (i, j) = edges.edge_of(f).unwrap();
            sig.contains(&i) && sig.contains(&j)
        })
        .count();
    let frac = hits as f64 / out.selected_features.len() as f64;
    // Signature pairs are ~5% of all edges; the selection should be > 10×
    // enriched.
    assert!(
        frac > 0.5,
        "only {frac} of selected features are signature pairs"
    );
}

#[test]
fn adhd_cohort_identification_and_subtype_structure() {
    let cohort = AdhdCohort::generate(AdhdCohortConfig::small(10, 5, 51)).unwrap();
    let attack = DeanonAttack::new(AttackConfig {
        n_features: 80,
        ..Default::default()
    })
    .unwrap();
    // Whole-cohort matching (Figure 9).
    let all: Vec<usize> = (0..cohort.n_subjects()).collect();
    let known = cohort.group_matrix_for(&all, Session::One).unwrap();
    let anon = cohort.group_matrix_for(&all, Session::Two).unwrap();
    let out = attack.run(&known, &anon).unwrap();
    assert!(out.accuracy >= 0.8, "mixed accuracy {}", out.accuracy);
    // Subtype-only matching (Figures 7/8).
    let sub1 = cohort.subjects_in(AdhdGroup::Subtype(1));
    let k1 = cohort.group_matrix_for(&sub1, Session::One).unwrap();
    let a1 = cohort.group_matrix_for(&sub1, Session::Two).unwrap();
    let out1 = attack.run(&k1, &a1).unwrap();
    assert!(out1.accuracy >= 0.6, "subtype1 accuracy {}", out1.accuracy);
}

#[test]
fn different_cohort_seeds_produce_unrelated_identities() {
    // An attack across *different cohorts* (no shared subjects) must score
    // near chance — the signature is individual, not an artifact of the
    // pipeline.
    let a = hcp(15, 61);
    let b = hcp(15, 62);
    let known = a.group_matrix(Task::Rest, Session::One).unwrap();
    let anon = b.group_matrix(Task::Rest, Session::Two).unwrap();
    let out = DeanonAttack::new(AttackConfig::default())
        .unwrap()
        .run(&known, &anon)
        .unwrap();
    // Ids collide textually (sub0000 …), so "truth" pairs them up; but the
    // subjects are different people, so accuracy must be near chance.
    assert!(
        out.accuracy < 0.34,
        "cross-cohort accuracy {} suggests leakage",
        out.accuracy
    );
}

#[test]
fn match_server_reproduces_the_one_shot_attack() {
    // The serve layer (DESIGN.md §1.7) is a deployment surface, not a new
    // attack: streaming every anonymous subject through a live MatchServer
    // must reproduce the one-shot pipeline's predictions and similarity
    // bits exactly, batching and worker scheduling included.
    use neurodeanon_core::attack::AttackPlan;
    use neurodeanon_core::serve::{MatchServer, Query, ServeConfig};

    let cohort = hcp(14, 21);
    let known = cohort.group_matrix(Task::Rest, Session::One).unwrap();
    let anon = cohort.group_matrix(Task::Rest, Session::Two).unwrap();
    let config = AttackConfig::default();
    let mut plan = AttackPlan::prepare(known.clone(), config.clone()).unwrap();
    let outcome = plan.run_against(&anon).unwrap();

    let server = MatchServer::start(
        AttackPlan::prepare(known, config).unwrap(),
        ServeConfig {
            workers: 3,
            batch_max: 5,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let receivers: Vec<_> = (0..anon.n_subjects())
        .map(|s| {
            let q = Query::new(
                s as u64,
                anon.subject_ids()[s].clone(),
                anon.subject_features(s),
            );
            server
                .submit(q)
                .unwrap_or_else(|(_, e)| panic!("submit: {e}"))
        })
        .collect();
    for (s, rx) in receivers.into_iter().enumerate() {
        let resp = rx.recv().unwrap().unwrap();
        assert_eq!(resp.best, Some(outcome.predicted[s]), "query {s}");
        let want = outcome.similarity.get(outcome.predicted[s], s).unwrap();
        assert_eq!(resp.score.to_bits(), want.to_bits(), "query {s} score");
    }
    let report = server.shutdown();
    assert!(report.clean_drain(), "server must drain clean: {report:?}");
}
