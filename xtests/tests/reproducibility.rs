//! Seed-reproducibility across the whole stack: every published number in
//! EXPERIMENTS.md must be regenerable bit-for-bit from the recorded seeds.

use neurodeanon_core::attack::AttackConfig;
use neurodeanon_core::experiments::{similarity_experiment, task_prediction_experiment};
use neurodeanon_core::performance::{predict_performance, PerfConfig};
use neurodeanon_core::task_id::TaskIdConfig;
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
use neurodeanon_embedding::tsne::TsneConfig;

fn cohort(seed: u64) -> HcpCohort {
    HcpCohort::generate(HcpCohortConfig::small(8, seed)).unwrap()
}

#[test]
fn similarity_experiment_is_bit_reproducible() {
    let a = similarity_experiment(&cohort(1), Task::Rest, AttackConfig::default()).unwrap();
    let b = similarity_experiment(&cohort(1), Task::Rest, AttackConfig::default()).unwrap();
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(
        a.similarity.as_slice(),
        b.similarity.as_slice(),
        "similarity matrices diverged"
    );
}

#[test]
fn performance_experiment_is_bit_reproducible() {
    let run = || {
        let c = cohort(2);
        let g = c.group_matrix(Task::Language, Session::One).unwrap();
        let y = c.performance_vector(Task::Language).unwrap();
        predict_performance(
            &g,
            &y,
            &PerfConfig {
                n_repeats: 3,
                ..Default::default()
            },
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.train_nrmse, b.train_nrmse);
    assert_eq!(a.test_nrmse, b.test_nrmse);
}

#[test]
fn task_prediction_is_bit_reproducible() {
    let cfg = TaskIdConfig {
        tsne: TsneConfig {
            perplexity: 8.0,
            n_iter: 120,
            ..TsneConfig::default()
        },
        ..TaskIdConfig::default()
    };
    let a = task_prediction_experiment(&cohort(3), &cfg, 1).unwrap();
    let b = task_prediction_experiment(&cohort(3), &cfg, 1).unwrap();
    assert_eq!(a.overall_accuracy, b.overall_accuracy);
    assert_eq!(a.rest_confusions, b.rest_confusions);
}

#[test]
fn different_seeds_change_the_data_not_the_phenomena() {
    // Different cohort seeds must give different numbers (no hidden
    // constants) while preserving the qualitative result.
    let a = similarity_experiment(&cohort(10), Task::Rest, AttackConfig::default()).unwrap();
    let b = similarity_experiment(&cohort(11), Task::Rest, AttackConfig::default()).unwrap();
    assert_ne!(a.similarity.as_slice(), b.similarity.as_slice());
    assert!(a.mean_diagonal > a.mean_offdiagonal);
    assert!(b.mean_diagonal > b.mean_offdiagonal);
}
