//! Integration-test host crate: the `tests/` directory here holds the
//! cross-crate suites (full-path attack runs, sampling-theory checks on
//! real connectome data, seed-reproducibility). No library code.
