//! End-to-end voxel path: the full Figure 3 workflow from raw 4-D scans.
//!
//! Everything the paper's pipeline does, on synthetic data: latent region
//! signals → synthetic scanner (drift, global signal, respiration, spikes,
//! motion, noise) → minimal preprocessing pipeline (Figure 4) → atlas
//! region averaging → Pearson connectomes → group matrices →
//! leverage-score feature selection → cross-session matching.
//!
//! Run with: `cargo run --release --example scanner_to_identity`

use neurodeanon_atlas::{grown_atlas, VoxelGrid};
use neurodeanon_connectome::{Connectome, GroupMatrix};
use neurodeanon_core::attack::{AttackConfig, DeanonAttack};
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
use neurodeanon_fmri::scanner::{Scanner, ScannerConfig};
use neurodeanon_linalg::{Matrix, Rng64};
use neurodeanon_preprocess::Pipeline;

fn main() {
    let n_subjects = 10;
    let n_regions = 20;
    let seed = 0xacce55;

    // A small brain: 14³ voxel grid, 20 grown parcels.
    let grid = VoxelGrid::new(14, 14, 14).expect("valid grid");
    let atlas = grown_atlas("demo-atlas", grid, n_regions, seed).expect("atlas grows");
    println!(
        "atlas: {} regions over {} brain voxels",
        atlas.n_regions(),
        atlas.brain_voxel_count()
    );

    // Latent subject physiology.
    let cohort = HcpCohort::generate(HcpCohortConfig {
        n_subjects,
        n_regions,
        n_timepoints: 500,
        n_pop_factors: 10,
        n_task_factors: 5,
        n_sig_factors: 3,
        n_sig_regions: 6,
        noise_std: 0.4,
        session_strength: 0.1,
        signature_gain: 1.8,
        signature_instability: 0.3,
        seed,
        scrub_fd_threshold: None,
    })
    .expect("valid cohort");

    // The scanner, with every artifact class enabled.
    let scanner = Scanner::new(ScannerConfig::default()).expect("valid scanner");
    let pipeline = Pipeline::default();

    let acquire_session = |session: Session| -> GroupMatrix {
        let mut data = Matrix::zeros(n_regions * (n_regions - 1) / 2, n_subjects);
        let mut ids = Vec::new();
        for s in 0..n_subjects {
            let latent = cohort.region_ts(s, Task::Rest, session).expect("latent");
            let mut rng = Rng64::new(seed ^ ((s as u64) << 8 | session.index()));
            let vol = scanner.acquire(&latent, &atlas, &mut rng).expect("scan");
            let (clean, report) = pipeline.run(vol, &atlas).expect("preprocess");
            if s == 0 {
                println!(
                    "subject 0 {}: {} brain voxels masked, {} frames scrubbed, \
                     GSR removed {:.0}% of variance",
                    session.encoding(),
                    report.brain_voxels,
                    report.scrubbed_frames.len(),
                    report.gsr_variance_removed * 100.0
                );
            }
            let conn = Connectome::from_region_ts(&clean).expect("connectome");
            data.set_col(s, &conn.vectorize()).expect("column");
            ids.push(format!(
                "{}/REST/{}",
                cohort.subject_id(s),
                session.encoding()
            ));
        }
        GroupMatrix::from_matrix(data, ids, n_regions).expect("group matrix")
    };

    println!("\nacquiring session 1 (identified) …");
    let known = acquire_session(Session::One);
    println!("acquiring session 2 (anonymous) …");
    let anon = acquire_session(Session::Two);

    let attack = DeanonAttack::new(AttackConfig {
        n_features: 60,
        ..Default::default()
    })
    .expect("valid attack");
    let outcome = attack.run(&known, &anon).expect("attack");
    println!(
        "\nvoxel-level end-to-end identification: {:.0}% ({} / {} subjects)",
        outcome.accuracy * 100.0,
        (outcome.accuracy * n_subjects as f64).round(),
        n_subjects
    );
    println!(
        "similarity: same-subject {:.3} vs different-subject {:.3}",
        outcome.mean_diagonal_similarity(),
        outcome.mean_offdiagonal_similarity()
    );
    assert!(
        outcome.accuracy >= 0.5,
        "pipeline demo should mostly identify"
    );
}
