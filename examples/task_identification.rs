//! Task identification from anonymized scans (the paper's §3.3.2 attack).
//!
//! Even without knowing *who* a subject is, an attacker learns *what they
//! were doing* in the scanner: all scans are embedded to 2-D with t-SNE and
//! task labels transfer by nearest neighbour from a partially labeled set.
//! The example also prints the embedding-quality metrics (trustworthiness/
//! continuity) that back the paper's claim that t-SNE "maintains pairwise
//! distance in low dimensions well".
//!
//! Run with: `cargo run --release --example task_identification`

use neurodeanon_core::task_id::{identify_tasks, TaskIdConfig};
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
use neurodeanon_embedding::tsne::TsneConfig;

fn main() {
    let cohort = HcpCohort::generate(HcpCohortConfig::small(12, 64)).expect("valid config");
    let conditions = [
        Task::Rest,
        Task::WorkingMemory,
        Task::Motor,
        Task::Language,
        Task::Emotion,
    ];
    println!(
        "embedding {} scans ({} subjects × {} conditions) to 2-D …",
        cohort.n_subjects() * conditions.len(),
        cohort.n_subjects(),
        conditions.len()
    );
    let groups: Vec<_> = conditions
        .iter()
        .map(|&t| cohort.group_matrix(t, Session::One).expect("group"))
        .collect();

    let cfg = TaskIdConfig {
        labeled_fraction: 0.5,
        tsne: TsneConfig {
            perplexity: 12.0,
            n_iter: 400,
            ..TsneConfig::default()
        },
        ..TaskIdConfig::default()
    };
    let out = identify_tasks(&groups, &cfg).expect("attack runs");

    println!(
        "task prediction accuracy on unlabeled subjects: {:.1}%",
        out.overall_accuracy * 100.0
    );
    for (cond, task) in conditions.iter().enumerate() {
        let acc = out.per_condition_accuracy[cond];
        println!("  {:>10}: {:.0}%", task.name(), acc * 100.0);
    }

    // Cluster geometry: centroid of each condition in the embedding.
    println!("\ncluster centroids in the 2-D map:");
    for (cond, task) in conditions.iter().enumerate() {
        let pts: Vec<usize> = (0..out.labels.len())
            .filter(|&p| out.labels[p] == cond)
            .collect();
        let cx: f64 = pts.iter().map(|&p| out.embedding[(p, 0)]).sum::<f64>() / pts.len() as f64;
        let cy: f64 = pts.iter().map(|&p| out.embedding[(p, 1)]).sum::<f64>() / pts.len() as f64;
        println!("  {:>10}: ({cx:8.2}, {cy:8.2})", task.name());
    }
    assert!(out.overall_accuracy > 0.6);
}
