//! Defense probe: the paper's §4 discussion, made executable.
//!
//! The attack localizes a small set of signature edges. The paper argues
//! this same localization tells a *defender* where to intervene: "it
//! provides a localized region where noise can be added to most
//! effectively defend against such attacks." This example compares
//!
//! 1. targeted noise — perturb only the edges the attacker would select;
//! 2. untargeted noise — the same total perturbation budget spread over
//!    random edges,
//!
//! and shows targeted defense collapses identification where untargeted
//! defense barely dents it, while leaving the vast majority of connectome
//! features untouched (downstream analyses keep most of their data).
//!
//! Run with: `cargo run --release --example defense_probe`

use neurodeanon_connectome::{EdgeIndex, GroupMatrix};
use neurodeanon_core::attack::{AttackConfig, DeanonAttack};
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
use neurodeanon_linalg::{Matrix, Rng64};

/// Adds N(0, sigma²) to the listed feature rows of a group matrix.
fn perturb_features(
    group: &GroupMatrix,
    features: &[usize],
    sigma: f64,
    rng: &mut Rng64,
) -> GroupMatrix {
    let mut data: Matrix = group.as_matrix().clone();
    for &f in features {
        for s in 0..data.cols() {
            let v = (data[(f, s)] + sigma * rng.gaussian()).clamp(-1.0, 1.0);
            data[(f, s)] = v;
        }
    }
    GroupMatrix::from_matrix(data, group.subject_ids().to_vec(), group.n_regions())
        .expect("same shape")
}

fn main() {
    let cohort = HcpCohort::generate(HcpCohortConfig::small(25, 13)).expect("valid config");
    let known = cohort
        .group_matrix(Task::Rest, Session::One)
        .expect("session 1");
    let anon = cohort
        .group_matrix(Task::Rest, Session::Two)
        .expect("session 2");
    let attack = DeanonAttack::new(AttackConfig::default()).expect("valid attack");

    // Baseline attack.
    let baseline = attack.run(&known, &anon).expect("attack");
    println!("baseline identification: {:.0}%", baseline.accuracy * 100.0);

    // The defender runs the attacker's own feature selection on the data it
    // is about to publish, localizing the signature edges.
    let signature_edges = &baseline.selected_features;
    let edge_index = EdgeIndex::new(known.n_regions()).expect("edge index");
    let (i, j) = edge_index.edge_of(signature_edges[0]).expect("edge");
    println!(
        "attacker-relevant features: {} of {} edges (top edge: regions {i}–{j})",
        signature_edges.len(),
        known.n_features()
    );

    let sigma = 0.35;
    let mut rng = Rng64::new(4242);

    // Targeted defense: noise only on the signature edges of the release.
    let defended = perturb_features(&anon, signature_edges, sigma, &mut rng);
    let targeted = attack.run(&known, &defended).expect("attack vs targeted");

    // Untargeted defense: the same number of randomly chosen edges.
    let random_edges = rng.sample_indices(known.n_features(), signature_edges.len());
    let defended_rand = perturb_features(&anon, &random_edges, sigma, &mut rng);
    let untargeted = attack
        .run(&known, &defended_rand)
        .expect("attack vs untargeted");

    println!(
        "\ndefense comparison (σ = {sigma}, {} edges perturbed):",
        signature_edges.len()
    );
    println!(
        "  targeted (signature edges):   identification {:.0}%",
        targeted.accuracy * 100.0
    );
    println!(
        "  untargeted (random edges):    identification {:.0}%",
        untargeted.accuracy * 100.0
    );
    println!(
        "  untouched features:           {:.2}% of the connectome",
        100.0 * (1.0 - signature_edges.len() as f64 / known.n_features() as f64)
    );
    assert!(
        targeted.accuracy <= untargeted.accuracy,
        "targeted defense should hurt the attack at least as much"
    );
}
