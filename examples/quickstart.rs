//! Quickstart: the paper's core de-anonymization attack in a few lines.
//!
//! A synthetic HCP-like cohort provides two resting-state scan sessions per
//! subject. We pretend session 1 is a de-anonymized archive (identities
//! known) and session 2 a "de-identified" public release, then match
//! subjects across the two using leverage-score-selected connectome
//! features — the paper's §3.1 workflow (Figure 3).
//!
//! Run with: `cargo run --release --example quickstart`

use neurodeanon_core::attack::{AttackConfig, DeanonAttack};
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};

fn main() {
    // 1. A 20-subject cohort (reduced regions for a fast demo; the paper's
    //    360-region / 64,620-feature setting is `HcpCohortConfig::default()`).
    let cohort = HcpCohort::generate(HcpCohortConfig::small(20, 42)).expect("valid config");
    println!(
        "cohort: {} subjects, {} regions, {} connectome features",
        cohort.n_subjects(),
        cohort.config().n_regions,
        cohort.config().n_regions * (cohort.config().n_regions - 1) / 2,
    );

    // 2. Group matrices: vectorized functional connectomes, one column per
    //    subject (paper §3.1.1).
    let known = cohort
        .group_matrix(Task::Rest, Session::One)
        .expect("session 1");
    let anon = cohort
        .group_matrix(Task::Rest, Session::Two)
        .expect("session 2");

    // 3. The attack: top-100 leverage features from the de-anonymized
    //    matrix, Pearson matching across groups.
    let attack = DeanonAttack::new(AttackConfig::default()).expect("valid config");
    let outcome = attack.run(&known, &anon).expect("attack runs");

    println!(
        "identification accuracy: {:.1}% ({} features retained of {})",
        outcome.accuracy * 100.0,
        outcome.selected_features.len(),
        known.n_features(),
    );
    println!(
        "similarity contrast: same-subject {:.3} vs different-subject {:.3}",
        outcome.mean_diagonal_similarity(),
        outcome.mean_offdiagonal_similarity(),
    );

    // 4. Per-subject verdicts.
    for (anon_idx, &predicted) in outcome.predicted.iter().enumerate().take(5) {
        let hit = outcome.truth[anon_idx] == predicted;
        println!(
            "  anonymous scan {:>2} -> predicted {} [{}]",
            anon_idx,
            known.subject_ids()[predicted],
            if hit { "correct" } else { "WRONG" },
        );
    }
    println!("  …");
    assert!(outcome.accuracy > 0.8, "demo cohort should identify easily");
}
