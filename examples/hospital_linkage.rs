//! Cross-dataset linkage: the paper's §1 threat scenario.
//!
//! An imaging center holds *identified* scans from routine care (here:
//! session-1 LANGUAGE task scans with names attached). A research
//! consortium publishes a "de-identified" resting-state dataset of
//! overlapping subjects, enriched with sensitive metadata (diagnosis,
//! genotype flags — HIPAA identifiers removed). The center links its
//! archive to the public release via connectome signatures and thereby
//! re-identifies the metadata — across *different tasks*, which is the
//! paper's central escalation (§3.3.1: de-anonymizing one dataset
//! compromises every other dataset the subjects appear in).
//!
//! Run with: `cargo run --release --example hospital_linkage`

use neurodeanon_core::attack::{subject_key, AttackConfig, DeanonAttack};
use neurodeanon_datasets::{HcpCohort, HcpCohortConfig, Session, Task};
use neurodeanon_linalg::Rng64;

fn main() {
    let cohort = HcpCohort::generate(HcpCohortConfig::small(25, 7)).expect("valid config");
    let n = cohort.n_subjects();

    // The hospital archive: identified LANGUAGE scans.
    let archive = cohort
        .group_matrix(Task::Language, Session::One)
        .expect("archive");
    // The public release: "de-identified" REST scans of the same people,
    // with sensitive per-record metadata.
    let release = cohort
        .group_matrix(Task::Rest, Session::Two)
        .expect("release");
    let mut rng = Rng64::new(99);
    let sensitive: Vec<String> = (0..n)
        .map(|_| {
            let dx = ["none", "MDD", "GAD", "ADHD"][rng.below(4)];
            let apoe4 = if rng.uniform() < 0.25 {
                "APOE4+"
            } else {
                "APOE4-"
            };
            format!("dx={dx}, {apoe4}")
        })
        .collect();

    println!("hospital archive: {n} identified LANGUAGE scans");
    println!("public release:   {n} anonymous REST scans + sensitive metadata\n");

    let attack = DeanonAttack::new(AttackConfig::default()).expect("valid config");
    let outcome = attack.run(&archive, &release).expect("linkage runs");

    println!(
        "linkage accuracy across tasks: {:.1}%\n",
        outcome.accuracy * 100.0
    );
    println!(
        "{:<12} {:<28} exposed metadata",
        "record", "linked identity"
    );
    let mut correct = 0;
    for (record, &predicted) in outcome.predicted.iter().enumerate() {
        let hit = outcome.truth[record] == predicted;
        if hit {
            correct += 1;
        }
        if record < 8 {
            println!(
                "{:<12} {:<28} {}",
                format!("rec-{record:03}"),
                format!(
                    "{} [{}]",
                    subject_key(&archive.subject_ids()[predicted]),
                    if hit { "correct" } else { "wrong" }
                ),
                sensitive[record],
            );
        }
    }
    println!("…");
    println!(
        "\n{correct}/{n} patients re-identified; their diagnosis and genotype \
         flags are now linked to names."
    );
    assert!(outcome.accuracy > 0.5);
}
