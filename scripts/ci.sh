#!/usr/bin/env bash
# Local CI gate: formatting, lints, hermetic release build, full test suite.
#
# The workspace is fully hermetic — zero external crates — so every step
# runs with `--offline`. A fresh checkout on a machine with no registry
# cache must pass this script end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline

# The parallel kernels promise bit-identical results at any thread count
# (linalg::par determinism contract), so the whole suite must pass both
# single-threaded and at the default thread count.
echo "==> NEURODEANON_THREADS=1 cargo test -q --offline"
NEURODEANON_THREADS=1 cargo test -q --offline

echo "==> cargo test -q --offline (default threads)"
cargo test -q --offline

echo "==> cargo check --benches --features criterion-bench --offline"
cargo check -p neurodeanon-bench --benches --features criterion-bench --offline

# The corruption/degradation property suite promises no panics and
# bit-identical outcomes at any thread count; pin it explicitly at both
# counts (the full-suite runs above cover it too, but this is the contract
# the robustness layer ships on, so name it).
echo "==> corruption property suite @ NEURODEANON_THREADS=1 and 8"
NEURODEANON_THREADS=1 cargo test -q --offline -p neurodeanon-core --test robustness_properties
NEURODEANON_THREADS=8 cargo test -q --offline -p neurodeanon-core --test robustness_properties

# The open-world layer promises splits/metrics that are pure functions of
# their seeds and a rate-1.0 split that collapses bitwise onto the
# closed-world path; pin the suite at both thread counts like the others.
echo "==> open-world property suite @ NEURODEANON_THREADS=1 and 8"
NEURODEANON_THREADS=1 cargo test -q --offline -p neurodeanon-core --test openworld_properties
NEURODEANON_THREADS=8 cargo test -q --offline -p neurodeanon-core --test openworld_properties

# The serve layer promises responses that are packing- and parallelism-
# invariant (one batched GEMM per batch, bitwise-identical per column to the
# per-query fused path) plus chaos-tested poison isolation; pin the property
# suite at both thread counts like the other robustness contracts.
echo "==> serve property suite @ NEURODEANON_THREADS=1 and 8"
NEURODEANON_THREADS=1 cargo test -q --offline -p neurodeanon-core --test serve_properties
NEURODEANON_THREADS=8 cargo test -q --offline -p neurodeanon-core --test serve_properties

# Observability smoke (DESIGN.md §1.6): a traced demo run must print a span
# tree, emit JSONL that self-parses (the trace_smoke test), and — the hard
# contract — produce byte-identical predictions untraced vs traced, at 1
# and 8 threads.
echo "==> observability smoke: deanon --trace @ NEURODEANON_THREADS=1 and 8"
NEURODEANON_THREADS=1 cargo test -q --offline -p neurodeanon-bench --test trace_smoke
NEURODEANON_THREADS=8 cargo test -q --offline -p neurodeanon-bench --test trace_smoke
TRACE_DIR="$(mktemp -d)"
./target/release/deanon --demo > "$TRACE_DIR/plain.csv"
NEURODEANON_THREADS=1 ./target/release/deanon --demo --trace \
  --metrics-out "$TRACE_DIR/metrics1.jsonl" > "$TRACE_DIR/traced1.csv" 2> "$TRACE_DIR/trace1.log"
NEURODEANON_THREADS=8 ./target/release/deanon --demo --trace \
  --metrics-out "$TRACE_DIR/metrics8.jsonl" > "$TRACE_DIR/traced8.csv" 2> "$TRACE_DIR/trace8.log"
diff "$TRACE_DIR/plain.csv" "$TRACE_DIR/traced1.csv"
diff "$TRACE_DIR/traced1.csv" "$TRACE_DIR/traced8.csv"
grep -q "deanon.run" "$TRACE_DIR/metrics1.jsonl"
grep -q "plan.correlate" "$TRACE_DIR/metrics8.jsonl"
rm -rf "$TRACE_DIR"
echo "    traced output identical to untraced at both thread counts"

# Kernel smoke: the kernels bench at small scale emits kernel_bench GFLOP/s
# records and gates them against crates/bench/benches/kernel_baseline.jsonl —
# >25% below the best committed baseline is a soft warning while a label has
# one baseline record and a hard failure once two exist. It also checks the
# f32-gallery argmax agreement and the subspace-bank ablation tracking.
echo "==> bench smoke: kernels @ small -> \${NEURODEANON_BENCH_JSON:-bench_results.jsonl}"
NEURODEANON_BENCH_SCALE=small \
  cargo bench -p neurodeanon-bench --bench kernels --features criterion-bench --offline

# Bench smoke: the sweeps bench at small scale appends its records to the
# JSON trajectory and asserts plan/direct bit-identity, the one-SVD-per-plan
# invariant, and that the trajectory parses with testkit::json.
echo "==> bench smoke: sweeps @ small -> \${NEURODEANON_BENCH_JSON:-bench_results.jsonl}"
NEURODEANON_BENCH_SCALE=small \
  cargo bench -p neurodeanon-bench --bench sweeps --features criterion-bench --offline

# Robustness smoke: the corruption-severity sweep at small scale must emit a
# parseable JSONL curve whose severity-0 points are bit-identical to the
# clean baseline and whose curves decay weakly monotonically.
echo "==> bench smoke: robustness @ small -> \${NEURODEANON_BENCH_JSON:-bench_results.jsonl}"
NEURODEANON_BENCH_SCALE=small \
  cargo bench -p neurodeanon-bench --bench robustness --features criterion-bench --offline

# Open-world smoke: the enrollment-rate × threshold sweep at small scale
# must append parseable CMC/ROC JSONL, with the rate-1.0 row bit-identical
# to the closed-world baseline and monotone CMC/ROC curves.
echo "==> bench smoke: openworld @ small -> \${NEURODEANON_BENCH_JSON:-bench_results.jsonl}"
NEURODEANON_BENCH_SCALE=small \
  cargo bench -p neurodeanon-bench --bench openworld --features criterion-bench --offline

# Serve smoke (DESIGN.md §1.7): the demo match server must drain clean and
# print byte-identical responses at 1 thread and at the default count —
# batching, worker scheduling, and the linalg pool must all be invisible in
# the responses. The chaos run (pinned seed) must also drain clean while
# quarantining exactly the injected faults; its response set is timing-
# dependent only in which error a faulted query gets, never in a clean
# query's match, so it gates on exit status + clean drain, not on a diff.
echo "==> serve smoke: deanon serve --demo @ NEURODEANON_THREADS=1 and default"
SERVE_DIR="$(mktemp -d)"
NEURODEANON_THREADS=1 ./target/release/deanon serve --demo --queries 60 \
  > "$SERVE_DIR/serve1.csv" 2> "$SERVE_DIR/serve1.log"
./target/release/deanon serve --demo --queries 60 \
  > "$SERVE_DIR/serve_default.csv" 2> "$SERVE_DIR/serve_default.log"
diff "$SERVE_DIR/serve1.csv" "$SERVE_DIR/serve_default.csv"
NEURODEANON_THREADS=1 ./target/release/deanon serve --demo --queries 60 \
  --chaos-seed 7 --chaos-rate 0.25 > "$SERVE_DIR/chaos.csv" 2> "$SERVE_DIR/chaos.log"
grep -q "quarantined" "$SERVE_DIR/chaos.log"
rm -rf "$SERVE_DIR"
echo "    serve responses identical at both thread counts; chaos run drained clean"

# Serve bench smoke: floods the match server at small scale (20k clean +
# 5k chaos queries), asserts every loaded-server response bitwise-identical
# to a batch-1 reference, that exactly the injected faults fail typed, and
# appends serve_bench JSONL records (p50/p99/qps/shed/quarantine/taxonomy).
echo "==> bench smoke: serve @ small -> \${NEURODEANON_BENCH_JSON:-bench_results.jsonl}"
NEURODEANON_BENCH_SCALE=small \
  cargo bench -p neurodeanon-bench --bench serve --features criterion-bench --offline

echo "CI green."
