#!/usr/bin/env bash
# Local CI gate: formatting, lints, hermetic release build, full test suite.
#
# The workspace is fully hermetic — zero external crates — so every step
# runs with `--offline`. A fresh checkout on a machine with no registry
# cache must pass this script end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "CI green."
